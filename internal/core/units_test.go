package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/memfs"
	"dircache/internal/sig"
	"dircache/internal/vfs"
)

func TestPCCBasics(t *testing.T) {
	p := newPCC(1<<10, 1<<10)
	if p.Entries() <= 0 {
		t.Fatal("no capacity")
	}
	if p.Lookup(42, 7) {
		t.Fatal("empty PCC hit")
	}
	p.Insert(42, 7)
	if !p.Lookup(42, 7) {
		t.Fatal("inserted entry missing")
	}
	// Stale seq must miss.
	if p.Lookup(42, 8) {
		t.Fatal("stale seq hit")
	}
	// Re-insert with new seq replaces (same dentry occupies one way).
	p.Insert(42, 8)
	if !p.Lookup(42, 8) || p.Lookup(42, 7) {
		t.Fatal("seq replacement broken")
	}
}

func TestPCCEvictionKeepsRecent(t *testing.T) {
	p := newPCC(64, 64) // 8 entries, 2 sets
	// Insert far more than capacity; the last-inserted must survive.
	for i := uint64(1); i <= 100; i++ {
		p.Insert(i, 1)
	}
	if !p.Lookup(100, 1) {
		t.Fatal("most recent insertion evicted")
	}
	hits := 0
	for i := uint64(1); i <= 100; i++ {
		if p.Lookup(i, 1) {
			hits++
		}
	}
	if hits == 0 || hits > p.Entries() {
		t.Fatalf("implausible survivor count %d (capacity %d)", hits, p.Entries())
	}
}

func TestPCCInvalidate(t *testing.T) {
	p := newPCC(512, 512)
	for i := uint64(1); i < 20; i++ {
		p.Insert(i, 0)
	}
	p.Invalidate()
	for i := uint64(1); i < 20; i++ {
		if p.Lookup(i, 0) {
			t.Fatal("entry survived Invalidate")
		}
	}
}

func TestPCCProperty(t *testing.T) {
	// Insert-then-lookup with matching seq always hits immediately after
	// insertion (no intervening inserts).
	p := newPCC(4<<10, 4<<10)
	f := func(id, seq uint64) bool {
		p.Insert(id, seq)
		return p.Lookup(id, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPCCConcurrent(t *testing.T) {
	p := newPCC(64<<10, 64<<10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := uint64(0); i < 5000; i++ {
				p.Insert(base+i, i)
				p.Lookup(base+i, i)
				p.Lookup(base+i/2, i/2)
			}
		}(w)
	}
	wg.Wait()
}

func TestDLHTBasics(t *testing.T) {
	key := sig.NewKey(9)
	k := vfs.NewKernel(vfs.Config{}, newTestFS())
	c := Install(k, Config{Seed: 9})
	h := newDLHT(c.nodes, k)
	root := k.NewTask(cred.Root())
	if err := root.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	ref, err := root.Walk("/d", 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, sg := key.HashString("/d")
	if h.Lookup(idx, sg) != nil {
		t.Fatal("empty DLHT hit")
	}
	h.Insert(idx, sg, ref.D)
	if h.Lookup(idx, sg) != ref.D {
		t.Fatal("inserted dentry missing")
	}
	if h.Len() != 1 {
		t.Fatalf("len %d", h.Len())
	}
	// Different signature in the same bucket must not match.
	other := sg
	other.W[1] ^= 1
	if h.Lookup(idx, other) != nil {
		t.Fatal("wrong-signature hit")
	}
	h.Remove(idx, sg, ref.D)
	if h.Lookup(idx, sg) != nil || h.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestDLHTChainRemoveMiddle(t *testing.T) {
	k := vfs.NewKernel(vfs.Config{}, newTestFS())
	c := Install(k, Config{Seed: 10})
	h := newDLHT(c.nodes, k)
	root := k.NewTask(cred.Root())
	var refs []vfs.PathRef
	var sigs []sig.Signature
	key := sig.NewKey(10)
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/d%d", i)
		if err := root.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
		ref, _ := root.Walk(p, 0)
		refs = append(refs, ref)
		_, sg := key.HashString(p)
		sigs = append(sigs, sg)
		h.Insert(77, sg, ref.D) // same bucket: exercise chaining
	}
	h.Remove(77, sigs[2], refs[2].D)
	for i := 0; i < 5; i++ {
		got := h.Lookup(77, sigs[i])
		if i == 2 && got != nil {
			t.Fatal("removed entry found")
		}
		if i != 2 && got != refs[i].D {
			t.Fatalf("entry %d lost after middle removal", i)
		}
	}
}

func newTestFS() fsapi.FileSystem {
	return memfs.New(memfs.Options{})
}

func TestConcurrentFastpathWithMutations(t *testing.T) {
	k, _, root := optimized(t)
	for i := 0; i < 8; i++ {
		if err := root.Mkdir(fmt.Sprintf("/w%d", i), 0o755); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if err := root.Create(fmt.Sprintf("/w%d/f%d", i, j), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			tt := k.NewTask(cred.Root())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := fmt.Sprintf("/w%d/f%d", i%4, i%8)
				if _, err := tt.Stat(p); err != nil {
					t.Errorf("reader stat %s: %v", p, err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			tt := k.NewTask(cred.Root())
			base := fmt.Sprintf("/w%d", 4+w)
			for i := 0; i < 150; i++ {
				oldp := fmt.Sprintf("%s/f%d", base, i%8)
				newp := fmt.Sprintf("%s/g%d", base, i%8)
				if err := tt.Rename(oldp, newp); err != nil {
					t.Errorf("rename: %v", err)
					return
				}
				if _, err := tt.Stat(newp); err != nil {
					t.Errorf("stat after rename: %v", err)
					return
				}
				if _, err := tt.Stat(oldp); !errors.Is(err, fsapi.ENOENT) {
					t.Errorf("old path after rename: %v", err)
					return
				}
				if err := tt.Chmod(base, 0o755); err != nil {
					t.Errorf("chmod: %v", err)
					return
				}
				if err := tt.Rename(newp, oldp); err != nil {
					t.Errorf("rename back: %v", err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestSignatureSeedsDiffer(t *testing.T) {
	// Two Cores with Seed 0 must draw different keys (boot randomness).
	k1 := vfs.NewKernel(vfs.Config{}, newTestFS())
	c1 := Install(k1, Config{})
	k2 := vfs.NewKernel(vfs.Config{}, newTestFS())
	c2 := Install(k2, Config{})
	_, s1 := c1.key.HashString("/etc/passwd")
	_, s2 := c2.key.HashString("/etc/passwd")
	if s1 == s2 {
		t.Fatal("two boots produced identical signatures")
	}
}

func TestPCCDynamicResize(t *testing.T) {
	// A working set larger than the initial table must trigger growth
	// (the production resize policy), after which the set fits.
	p := newPCC(1<<10, 64<<10) // 128 entries initial, 8192 max
	const ws = 1024
	for round := 0; round < 40; round++ {
		for id := uint64(1); id <= ws; id++ {
			if !p.Lookup(id, 1) {
				p.Insert(id, 1)
			}
		}
	}
	if p.Resizes() == 0 {
		t.Fatal("PCC never resized under sustained thrash")
	}
	if p.Entries() < ws {
		t.Fatalf("PCC grew to %d entries; working set %d", p.Entries(), ws)
	}
	// Steady state: the working set should now mostly hit.
	hits0, miss0 := p.Stats()
	for id := uint64(1); id <= ws; id++ {
		if !p.Lookup(id, 1) {
			p.Insert(id, 1)
		}
	}
	hits1, miss1 := p.Stats()
	if hits1-hits0 < (miss1-miss0)*4 {
		t.Fatalf("post-resize hit ratio poor: +%d hits, +%d misses", hits1-hits0, miss1-miss0)
	}
}

func TestPCCPinnedNeverResizes(t *testing.T) {
	p := newPCC(1<<10, 1<<10)
	for round := 0; round < 50; round++ {
		for id := uint64(1); id <= 2048; id++ {
			if !p.Lookup(id, 1) {
				p.Insert(id, 1)
			}
		}
	}
	if p.Resizes() != 0 {
		t.Fatal("pinned PCC resized")
	}
}
