package core

import (
	"testing"

	"dircache/internal/audit"
	"dircache/internal/cred"
	"dircache/internal/memfs"
	"dircache/internal/vfs"
)

// inLookupFixture builds an optimized kernel that admits fastpath
// population on the first touch, so a single cold walk is enough to
// publish its dentries to the DLHT.
func inLookupFixture(t *testing.T) (*vfs.Kernel, *Core, *vfs.Task) {
	t.Helper()
	k := vfs.NewKernel(vfs.Config{DirCompleteness: true}, memfs.New(memfs.Options{}))
	c := Install(k, Config{Seed: 42, AdmitAfter: 1})
	root := k.NewTask(cred.Root())
	for _, p := range []string{"/a", "/a/b"} {
		if err := root.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.Create("/a/b/file", 0o644); err != nil {
		t.Fatal(err)
	}
	return k, c, root
}

// TestAuditCatchesLeakedInLookup injects the one bug the dlht_in_lookup
// check exists for: a resolved miss that never clears its DInLookup flag.
// The leaked placeholder gets published to the DLHT by the slow-walk
// hooks (population only screens for dead dentries), and the auditor must
// flag it. The control half proves the same workload without the injected
// bug audits clean while still exercising the check.
func TestAuditCatchesLeakedInLookup(t *testing.T) {
	run := func(t *testing.T, inject bool) audit.Report {
		t.Helper()
		k, c, root := inLookupFixture(t)
		k.TestSkipInLookupClear(inject)
		k.DropCaches()
		// Cold walks resolve every component through missLookup; with the
		// bug injected each resolved dentry keeps DInLookup set. Walk twice
		// so admission and publication definitely happen.
		for i := 0; i < 2; i++ {
			if _, err := root.Stat("/a/b/file"); err != nil {
				t.Fatal(err)
			}
		}
		rep := audit.New(k, c).RunUntilValid(5)
		if !rep.Valid {
			t.Fatal("audit pass never validated on a quiescent system")
		}
		if rep.Checked["dlht_in_lookup"] == 0 {
			t.Fatal("dlht_in_lookup check examined no entries (nothing was published)")
		}
		return rep
	}

	t.Run("control", func(t *testing.T) {
		rep := run(t, false)
		if n := rep.Violations(); n != 0 {
			t.Fatalf("clean system reported %d violations: %s", n, rep.Summary())
		}
	})
	t.Run("injected", func(t *testing.T) {
		rep := run(t, true)
		found := false
		for _, f := range rep.Findings {
			if f.Check == "dlht_in_lookup" {
				found = true
			}
		}
		if !found {
			t.Fatalf("auditor missed the leaked in-lookup placeholder: %s", rep.Summary())
		}
	})
}
