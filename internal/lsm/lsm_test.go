package lsm

import (
	"errors"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
)

func TestEmptyStackAllows(t *testing.T) {
	var s Stack
	if !s.Empty() {
		t.Fatal("zero stack not empty")
	}
	c := cred.New(1, 1, nil, "")
	if err := s.Check(c, InodeView{}, MayRead|MayWrite|MayExec); err != nil {
		t.Fatal(err)
	}
}

func TestDenyWins(t *testing.T) {
	var s Stack
	p := NewLabelPolicy()
	s.Register(p)
	s.Register(OwnerOnly{})
	if got := s.Names(); len(got) != 2 || got[0] != "labels" || got[1] != "owneronly" {
		t.Fatalf("names %v", got)
	}
	confined := cred.New(1000, 1000, nil, "webapp")
	obj := InodeView{UID: 2000, Label: "secret"}
	// labels denies (no allow rule) even though owneronly would allow reads.
	if err := s.Check(confined, obj, MayRead); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("expected EACCES, got %v", err)
	}
}

func TestLabelPolicyMatrix(t *testing.T) {
	p := NewLabelPolicy()
	p.Allow("webapp", "webdata", MayRead|MayExec)
	webapp := cred.New(1000, 1000, nil, "webapp")
	other := cred.New(1000, 1000, nil, "batch")
	unconfined := cred.New(1000, 1000, nil, "")

	obj := InodeView{Label: "webdata"}
	if err := p.InodePermission(webapp, obj, MayRead); err != nil {
		t.Fatalf("granted read denied: %v", err)
	}
	if err := p.InodePermission(webapp, obj, MayExec); err != nil {
		t.Fatalf("granted exec denied: %v", err)
	}
	if err := p.InodePermission(webapp, obj, MayWrite); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("ungranted write allowed: %v", err)
	}
	if err := p.InodePermission(webapp, obj, MayRead|MayWrite); !errors.Is(err, fsapi.EACCES) {
		t.Fatal("combined mask must require all bits")
	}
	if err := p.InodePermission(other, obj, MayRead); !errors.Is(err, fsapi.EACCES) {
		t.Fatal("different subject allowed")
	}
	if err := p.InodePermission(unconfined, obj, MayWrite); err != nil {
		t.Fatalf("unconfined subject denied: %v", err)
	}
}

func TestLabelPolicyUnlabeledObjects(t *testing.T) {
	p := NewLabelPolicy()
	confined := cred.New(1, 1, nil, "domain")
	if err := p.InodePermission(confined, InodeView{}, MayRead); err != nil {
		t.Fatalf("default mask should allow: %v", err)
	}
	p.DefaultMask = MayRead
	if err := p.InodePermission(confined, InodeView{}, MayWrite); !errors.Is(err, fsapi.EACCES) {
		t.Fatal("restricted default mask ignored")
	}
}

func TestOwnerOnly(t *testing.T) {
	m := OwnerOnly{}
	confined := cred.New(1000, 1000, nil, "jail")
	mine := InodeView{UID: 1000}
	theirs := InodeView{UID: 2000}
	if err := m.InodePermission(confined, mine, MayWrite); err != nil {
		t.Fatalf("own file write denied: %v", err)
	}
	if err := m.InodePermission(confined, theirs, MayWrite); !errors.Is(err, fsapi.EACCES) {
		t.Fatal("foreign write allowed")
	}
	if err := m.InodePermission(confined, theirs, MayRead); err != nil {
		t.Fatalf("read should pass: %v", err)
	}
	root := cred.New(0, 0, nil, "jail")
	if err := m.InodePermission(root, theirs, MayWrite); err != nil {
		t.Fatalf("root denied: %v", err)
	}
}

func TestPathACL(t *testing.T) {
	p := NewPathACL()
	p.Allow("web", "/srv/www", MayRead)
	p.Allow("web", "/var/log/web", MayRead|MayWrite)
	var s Stack
	s.Register(p)

	web := cred.New(33, 33, nil, "web")
	other := cred.New(33, 33, nil, "batch")
	unconfined := cred.New(33, 33, nil, "")

	cases := []struct {
		c    *cred.Cred
		path string
		mask Mask
		ok   bool
	}{
		{web, "/srv/www/index.html", MayRead, true},
		{web, "/srv/www", MayRead, true},
		{web, "/srv/wwwroot/x", MayRead, false},
		{web, "/srv/www/index.html", MayWrite, false},
		{web, "/var/log/web/access.log", MayWrite, true},
		{web, "/etc/passwd", MayRead, false},
		{other, "/etc/passwd", MayRead, true},       // no profile: unconfined
		{unconfined, "/etc/passwd", MayWrite, true}, // empty label
	}
	for _, tc := range cases {
		err := s.CheckPath(tc.c, tc.path, tc.mask)
		if tc.ok && err != nil {
			t.Errorf("CheckPath(%s,%s,%v) denied: %v", tc.c.Security, tc.path, tc.mask, err)
		}
		if !tc.ok && !errors.Is(err, fsapi.EACCES) {
			t.Errorf("CheckPath(%s,%s,%v) allowed", tc.c.Security, tc.path, tc.mask)
		}
	}
	// InodePermission is a pass-through.
	if err := p.InodePermission(web, InodeView{}, MayWrite); err != nil {
		t.Fatal(err)
	}
}
