// Package lsm is a Linux Security Modules-style hook framework (§4.1). A
// module can veto the VFS's default (DAC) decision for any inode access,
// including the per-component directory search checks that make up a prefix
// check. The optimized cache's PCC memoizes whatever these modules decide —
// the paper's point is that memoization at the credential level works for
// arbitrary LSM logic, not just Unix permission bits.
package lsm

import (
	"sync"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
)

// Mask is the access being requested.
type Mask uint8

// Access mask bits, mirroring MAY_READ/MAY_WRITE/MAY_EXEC.
const (
	MayExec Mask = 1 << iota
	MayWrite
	MayRead
)

// InodeView is the subset of inode state exposed to modules.
type InodeView struct {
	ID    fsapi.NodeID
	Mode  fsapi.Mode
	UID   uint32
	GID   uint32
	Label string // object security label (like an xattr-backed context)
}

// Module is a security module. InodePermission returns nil to allow, or an
// error (normally fsapi.EACCES) to deny; it runs after DAC, so it can only
// further restrict.
type Module interface {
	Name() string
	InodePermission(c *cred.Cred, inode InodeView, mask Mask) error
}

// Stack is an ordered set of modules, evaluated in registration order with
// deny-wins semantics. The zero value is an empty stack. Safe for
// concurrent Check against concurrent (rare) Register.
type Stack struct {
	mu      sync.RWMutex
	modules []Module
}

// Register appends a module.
func (s *Stack) Register(m Module) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.modules = append(s.modules, m)
}

// Names lists registered module names in order.
func (s *Stack) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.modules))
	for i, m := range s.modules {
		out[i] = m.Name()
	}
	return out
}

// Empty reports whether no modules are registered (fast path for Check).
func (s *Stack) Empty() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.modules) == 0
}

// Check runs every module; the first denial wins.
func (s *Stack) Check(c *cred.Cred, inode InodeView, mask Mask) error {
	s.mu.RLock()
	mods := s.modules
	s.mu.RUnlock()
	for _, m := range mods {
		if err := m.InodePermission(c, inode, mask); err != nil {
			return err
		}
	}
	return nil
}
