package lsm

import (
	"sync"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
)

// LabelPolicy is a type-enforcement-style module in the spirit of SELinux:
// subjects (credential security labels) are granted masks on object labels
// through an explicit allow matrix. Unlabeled objects are governed by the
// DefaultMask. An unconfined subject (empty security label) is allowed
// everything, like SELinux's permissive domains.
type LabelPolicy struct {
	mu sync.RWMutex
	// allow[subject][object] = permitted mask
	allow map[string]map[string]Mask
	// DefaultMask applies when the object has no label.
	DefaultMask Mask
}

// NewLabelPolicy creates an empty policy that permits access to unlabeled
// objects.
func NewLabelPolicy() *LabelPolicy {
	return &LabelPolicy{
		allow:       make(map[string]map[string]Mask),
		DefaultMask: MayRead | MayWrite | MayExec,
	}
}

// Allow grants subject label the mask on object label.
func (p *LabelPolicy) Allow(subject, object string, mask Mask) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.allow[subject]
	if !ok {
		m = make(map[string]Mask)
		p.allow[subject] = m
	}
	m[object] |= mask
}

// Name implements Module.
func (p *LabelPolicy) Name() string { return "labels" }

// InodePermission implements Module.
func (p *LabelPolicy) InodePermission(c *cred.Cred, inode InodeView, mask Mask) error {
	if c.Security == "" {
		return nil // unconfined subject
	}
	if inode.Label == "" {
		if p.DefaultMask&mask == mask {
			return nil
		}
		return fsapi.EACCES
	}
	p.mu.RLock()
	granted := p.allow[c.Security][inode.Label]
	p.mu.RUnlock()
	if granted&mask == mask {
		return nil
	}
	return fsapi.EACCES
}

// OwnerOnly is a small hardening module in the spirit of restrictive LSMs:
// confined subjects (non-empty security label) may only write objects they
// own. It exercises the "LSM sees every component access" property with
// logic that depends on the credential, not just the inode.
type OwnerOnly struct{}

// Name implements Module.
func (OwnerOnly) Name() string { return "owneronly" }

// InodePermission implements Module.
func (OwnerOnly) InodePermission(c *cred.Cred, inode InodeView, mask Mask) error {
	if c.Security == "" || mask&MayWrite == 0 {
		return nil
	}
	if c.IsRoot() || inode.UID == c.UID {
		return nil
	}
	return fsapi.EACCES
}
