package lsm

import (
	"strings"
	"sync"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
)

// PathModule is the optional interface for modules that mediate by
// pathname (AppArmor-style) rather than by inode attributes. The VFS
// consults it at open time with the object's canonical path; pathname
// checks sit outside the dcache fastpath (they are per-open, not
// per-component), which is exactly why the paper's PCC — which memoizes
// the per-component search checks — composes with them unchanged.
type PathModule interface {
	PathPermission(c *cred.Cred, path string, mask Mask) error
}

// CheckPath runs every registered module that mediates by pathname; the
// first denial wins.
func (s *Stack) CheckPath(c *cred.Cred, path string, mask Mask) error {
	s.mu.RLock()
	mods := s.modules
	s.mu.RUnlock()
	for _, m := range mods {
		if pm, ok := m.(PathModule); ok {
			if err := pm.PathPermission(c, path, mask); err != nil {
				return err
			}
		}
	}
	return nil
}

// pathRule grants a mask under a path prefix.
type pathRule struct {
	prefix string
	mask   Mask
}

// PathACL is an AppArmor-like profile set: confined subjects (non-empty
// credential security labels with a registered profile) may only open
// paths matched by an allow rule; everything else is denied. Subjects
// without a profile are unconfined.
type PathACL struct {
	mu       sync.RWMutex
	profiles map[string][]pathRule
}

// NewPathACL creates an empty profile set.
func NewPathACL() *PathACL {
	return &PathACL{profiles: make(map[string][]pathRule)}
}

// Allow grants subject-labelled processes the mask under prefix (a path
// prefix matched at component granularity: "/srv/www" matches
// "/srv/www/a" but not "/srv/wwwroot").
func (p *PathACL) Allow(subject, prefix string, mask Mask) {
	p.mu.Lock()
	p.profiles[subject] = append(p.profiles[subject], pathRule{prefix: prefix, mask: mask})
	p.mu.Unlock()
}

// Name implements Module.
func (p *PathACL) Name() string { return "pathacl" }

// InodePermission implements Module: pathname mediation doesn't constrain
// inode-level search checks.
func (p *PathACL) InodePermission(*cred.Cred, InodeView, Mask) error { return nil }

// PathPermission implements PathModule.
func (p *PathACL) PathPermission(c *cred.Cred, path string, mask Mask) error {
	if c.Security == "" {
		return nil // unconfined
	}
	p.mu.RLock()
	rules, confined := p.profiles[c.Security]
	p.mu.RUnlock()
	if !confined {
		return nil // no profile: unconfined subject label
	}
	var granted Mask
	for _, r := range rules {
		if prefixMatch(r.prefix, path) {
			granted |= r.mask
		}
	}
	if granted&mask == mask {
		return nil
	}
	return fsapi.EACCES
}

// prefixMatch reports whether path lies under prefix at component
// boundaries.
func prefixMatch(prefix, path string) bool {
	if prefix == "/" {
		return true
	}
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}
