// Package vclock provides a virtual clock for accounting simulated device
// time. The paper's cold-cache experiments (Table 2) depend on misses being
// charged realistic I/O latency; rather than sleeping, substrates charge
// nanoseconds to a Run-scoped virtual clock, keeping experiments
// deterministic and fast while preserving the relative cost structure
// (hit ≪ memfs op ≪ disk I/O).
package vclock

import "sync/atomic"

// Run accumulates simulated nanoseconds for one experiment run. The zero
// value is ready to use. Safe for concurrent use.
type Run struct {
	ns  atomic.Int64
	ops atomic.Int64
}

// Charge adds ns simulated nanoseconds to the run.
func (r *Run) Charge(ns int64) {
	if r == nil || ns == 0 {
		return
	}
	r.ns.Add(ns)
	r.ops.Add(1)
}

// Nanos returns the total simulated nanoseconds charged so far.
func (r *Run) Nanos() int64 {
	if r == nil {
		return 0
	}
	return r.ns.Load()
}

// Ops returns the number of Charge calls (charged device operations).
func (r *Run) Ops() int64 {
	if r == nil {
		return 0
	}
	return r.ops.Load()
}

// Reset zeroes the run.
func (r *Run) Reset() {
	if r == nil {
		return
	}
	r.ns.Store(0)
	r.ops.Store(0)
}
