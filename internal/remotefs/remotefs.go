// Package remotefs simulates an NFSv2/3-style network file system: a
// stateless server reached over a simulated network, with the client
// semantics that §4.3 of the paper calls out — close-to-open consistency
// forces the client to revalidate every path component at the server, so
// whole-path direct lookup buys nothing ("effectively forcing a cache miss
// and nullifying any benefit to the hit path"). The VFS honours this via
// the Revalidate capability: the optimized cache never serves fastpath
// hits for dentries on such a file system.
//
// The "server" is any fsapi.FileSystem; this package wraps it with
// per-operation round-trip accounting charged to a virtual clock. Each
// protocol operation keeps its own RPC counter, and per-op latency can be
// injected individually (PerOpNanos), so tests and benches can prove
// round-trip savings — "the cold scan issued one READDIR instead of N
// LOOKUPs" — rather than infer them from wall time.
package remotefs

import (
	"sync"
	"sync/atomic"

	"dircache/internal/fsapi"
	"dircache/internal/vclock"
)

// Op indexes one simulated protocol operation (the RPC kinds of an
// NFSv2/3-style protocol as seen through fsapi).
type Op int

// The protocol operations, in fsapi declaration order.
const (
	OpGetNode Op = iota // GETATTR
	OpLookup            // LOOKUP
	OpCreate
	OpMkdir
	OpSymlink
	OpLink
	OpUnlink
	OpRmdir
	OpRename
	OpReadDir // READDIR (one trip per batch)
	OpReadLink
	OpSetAttr
	OpReadAt
	OpWriteAt
	OpSync // COMMIT

	NumOps
)

var opNames = [NumOps]string{
	"getnode", "lookup", "create", "mkdir", "symlink", "link", "unlink",
	"rmdir", "rename", "readdir", "readlink", "setattr", "read", "write",
	"sync",
}

// String returns the operation's counter name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Options configures the simulated client/server pair.
type Options struct {
	// RTTNanos is charged per server round trip (default 200µs, a fast
	// LAN NFS server).
	RTTNanos int64
	// PerOpNanos overrides RTTNanos for individual operations, keyed by
	// Op.String() name ("lookup", "readdir", ...). Lets a bench model,
	// say, a READDIR that costs more than a LOOKUP but far less than the
	// LOOKUP storm it replaces.
	PerOpNanos map[string]int64
	// CheapReadDir advertises the readdir-plus-style capability: one
	// READDIR answers what would otherwise be one LOOKUP per child, so
	// the VFS may bulk-populate on a miss storm. Off by default — a
	// plain NFSv2 server has no such call.
	CheapReadDir bool
}

// FS wraps a backing file system behind a simulated network.
type FS struct {
	server fsapi.FileSystem
	rtt    int64
	perOp  [NumOps]int64 // 0 = use rtt
	clock  atomic.Pointer[vclock.Run]
	trips  atomic.Int64
	ops    [NumOps]atomic.Int64
	cheap  atomic.Bool

	// attrs is the client-side attribute cache a readdir-plus reply
	// fills: with CheapReadDir on, one READDIR trip carries each entry's
	// attributes alongside the dirent (NFSv3 READDIRPLUS), so the
	// per-child GETATTRs that follow a bulk population are answered
	// locally instead of each costing a round trip. Entries are consumed
	// on first use — close-to-open consistency bounds how long a
	// prefetched attribute may be trusted, so a second revalidation of
	// the same node goes back to the server.
	attrMu   sync.Mutex
	attrs    map[fsapi.NodeID]fsapi.NodeInfo
	attrHits atomic.Int64
}

var _ fsapi.FileSystem = (*FS)(nil)

// New wraps server as a remote file system.
func New(server fsapi.FileSystem, opts Options) *FS {
	rtt := opts.RTTNanos
	if rtt == 0 {
		rtt = 200_000
	}
	fs := &FS{server: server, rtt: rtt}
	for op := Op(0); op < NumOps; op++ {
		if ns, ok := opts.PerOpNanos[op.String()]; ok {
			fs.perOp[op] = ns
		}
	}
	fs.cheap.Store(opts.CheapReadDir)
	return fs
}

// SetClock directs round-trip charges to run.
func (fs *FS) SetClock(run *vclock.Run) { fs.clock.Store(run) }

// SetCheapReadDir flips the readdir-plus capability advertisement at
// runtime (benches compare bulk population on vs off over one server).
// The VFS reads capabilities at first mount, so flip before mounting.
func (fs *FS) SetCheapReadDir(on bool) { fs.cheap.Store(on) }

// RoundTrips reports the number of simulated server messages.
func (fs *FS) RoundTrips() int64 { return fs.trips.Load() }

// AttrCacheHits reports how many GETATTRs were answered from readdir-plus
// prefetched attributes (round trips avoided).
func (fs *FS) AttrCacheHits() int64 { return fs.attrHits.Load() }

// OpCount reports the round trips issued for one operation by name
// ("lookup", "readdir", ...); unknown names report 0.
func (fs *FS) OpCount(name string) int64 {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == name {
			return fs.ops[op].Load()
		}
	}
	return 0
}

// OpCounts snapshots every operation's round-trip counter by name.
func (fs *FS) OpCounts() map[string]int64 {
	out := make(map[string]int64, NumOps)
	for op := Op(0); op < NumOps; op++ {
		out[op.String()] = fs.ops[op].Load()
	}
	return out
}

func (fs *FS) trip(op Op) {
	fs.trips.Add(1)
	fs.ops[op].Add(1)
	ns := fs.perOp[op]
	if ns == 0 {
		ns = fs.rtt
	}
	fs.clock.Load().Charge(ns)
}

// Root implements fsapi.FileSystem (mount-time; no trip charged).
func (fs *FS) Root() fsapi.NodeInfo { return fs.server.Root() }

// GetNode implements fsapi.FileSystem (GETATTR). Attributes prefetched by
// a readdir-plus reply are served from the client cache without a trip.
func (fs *FS) GetNode(id fsapi.NodeID) (fsapi.NodeInfo, error) {
	if fs.cheap.Load() {
		fs.attrMu.Lock()
		if info, ok := fs.attrs[id]; ok {
			delete(fs.attrs, id)
			fs.attrMu.Unlock()
			fs.attrHits.Add(1)
			return info, nil
		}
		fs.attrMu.Unlock()
	}
	fs.trip(OpGetNode)
	return fs.server.GetNode(id)
}

// Lookup implements fsapi.FileSystem (LOOKUP — one trip per component,
// the §4.3 cost direct lookup cannot avoid on a stateless protocol).
func (fs *FS) Lookup(dir fsapi.NodeID, name string) (fsapi.NodeInfo, error) {
	fs.trip(OpLookup)
	return fs.server.Lookup(dir, name)
}

// Create implements fsapi.FileSystem.
func (fs *FS) Create(dir fsapi.NodeID, name string, mode fsapi.Mode, uid, gid uint32) (fsapi.NodeInfo, error) {
	fs.trip(OpCreate)
	return fs.server.Create(dir, name, mode, uid, gid)
}

// Mkdir implements fsapi.FileSystem.
func (fs *FS) Mkdir(dir fsapi.NodeID, name string, mode fsapi.Mode, uid, gid uint32) (fsapi.NodeInfo, error) {
	fs.trip(OpMkdir)
	return fs.server.Mkdir(dir, name, mode, uid, gid)
}

// Symlink implements fsapi.FileSystem.
func (fs *FS) Symlink(dir fsapi.NodeID, name, target string, uid, gid uint32) (fsapi.NodeInfo, error) {
	fs.trip(OpSymlink)
	return fs.server.Symlink(dir, name, target, uid, gid)
}

// Link implements fsapi.FileSystem.
func (fs *FS) Link(dir fsapi.NodeID, name string, node fsapi.NodeID) (fsapi.NodeInfo, error) {
	fs.trip(OpLink)
	return fs.server.Link(dir, name, node)
}

// Unlink implements fsapi.FileSystem.
func (fs *FS) Unlink(dir fsapi.NodeID, name string) error {
	fs.trip(OpUnlink)
	return fs.server.Unlink(dir, name)
}

// Rmdir implements fsapi.FileSystem.
func (fs *FS) Rmdir(dir fsapi.NodeID, name string) error {
	fs.trip(OpRmdir)
	return fs.server.Rmdir(dir, name)
}

// Rename implements fsapi.FileSystem.
func (fs *FS) Rename(odir fsapi.NodeID, oname string, ndir fsapi.NodeID, nname string) error {
	fs.trip(OpRename)
	return fs.server.Rename(odir, oname, ndir, nname)
}

// ReadDir implements fsapi.FileSystem (READDIR, one trip per batch; with
// CheapReadDir, READDIRPLUS — the same trip prefetches every returned
// entry's attributes into the client cache).
func (fs *FS) ReadDir(dir fsapi.NodeID, cookie uint64, count int) ([]fsapi.DirEntry, uint64, bool, error) {
	fs.trip(OpReadDir)
	ents, next, eof, err := fs.server.ReadDir(dir, cookie, count)
	if err == nil && fs.cheap.Load() {
		fs.attrMu.Lock()
		if fs.attrs == nil {
			fs.attrs = make(map[fsapi.NodeID]fsapi.NodeInfo, len(ents))
		}
		for _, e := range ents {
			if info, gerr := fs.server.GetNode(e.ID); gerr == nil {
				fs.attrs[e.ID] = info
			}
		}
		fs.attrMu.Unlock()
	}
	return ents, next, eof, err
}

// ReadLink implements fsapi.FileSystem.
func (fs *FS) ReadLink(id fsapi.NodeID) (string, error) {
	fs.trip(OpReadLink)
	return fs.server.ReadLink(id)
}

// SetAttr implements fsapi.FileSystem.
func (fs *FS) SetAttr(id fsapi.NodeID, attr fsapi.SetAttr) (fsapi.NodeInfo, error) {
	fs.trip(OpSetAttr)
	return fs.server.SetAttr(id, attr)
}

// ReadAt implements fsapi.FileSystem.
func (fs *FS) ReadAt(id fsapi.NodeID, p []byte, off int64) (int, error) {
	fs.trip(OpReadAt)
	return fs.server.ReadAt(id, p, off)
}

// WriteAt implements fsapi.FileSystem.
func (fs *FS) WriteAt(id fsapi.NodeID, p []byte, off int64) (int, error) {
	fs.trip(OpWriteAt)
	return fs.server.WriteAt(id, p, off)
}

// Sync implements fsapi.FileSystem (COMMIT).
func (fs *FS) Sync() error {
	fs.trip(OpSync)
	return fs.server.Sync()
}

// StatFS implements fsapi.FileSystem, advertising the revalidation
// requirement that disables whole-path direct lookup (§4.3) and, when
// configured, the readdir-plus capability that allows bulk population.
func (fs *FS) StatFS() fsapi.StatFS {
	st := fs.server.StatFS()
	st.Caps.Name = "remotefs"
	st.Caps.Revalidate = true
	st.Caps.CheapReadDir = fs.cheap.Load()
	return st
}
