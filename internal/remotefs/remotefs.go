// Package remotefs simulates an NFSv2/3-style network file system: a
// stateless server reached over a simulated network, with the client
// semantics that §4.3 of the paper calls out — close-to-open consistency
// forces the client to revalidate every path component at the server, so
// whole-path direct lookup buys nothing ("effectively forcing a cache miss
// and nullifying any benefit to the hit path"). The VFS honours this via
// the Revalidate capability: the optimized cache never serves fastpath
// hits for dentries on such a file system.
//
// The "server" is any fsapi.FileSystem; this package wraps it with
// per-operation round-trip accounting charged to a virtual clock.
package remotefs

import (
	"sync/atomic"

	"dircache/internal/fsapi"
	"dircache/internal/vclock"
)

// Options configures the simulated client/server pair.
type Options struct {
	// RTTNanos is charged per server round trip (default 200µs, a fast
	// LAN NFS server).
	RTTNanos int64
}

// FS wraps a backing file system behind a simulated network.
type FS struct {
	server fsapi.FileSystem
	rtt    int64
	clock  atomic.Pointer[vclock.Run]
	trips  atomic.Int64
}

var _ fsapi.FileSystem = (*FS)(nil)

// New wraps server as a remote file system.
func New(server fsapi.FileSystem, opts Options) *FS {
	rtt := opts.RTTNanos
	if rtt == 0 {
		rtt = 200_000
	}
	return &FS{server: server, rtt: rtt}
}

// SetClock directs round-trip charges to run.
func (fs *FS) SetClock(run *vclock.Run) { fs.clock.Store(run) }

// RoundTrips reports the number of simulated server messages.
func (fs *FS) RoundTrips() int64 { return fs.trips.Load() }

func (fs *FS) trip() {
	fs.trips.Add(1)
	fs.clock.Load().Charge(fs.rtt)
}

// Root implements fsapi.FileSystem (mount-time; no trip charged).
func (fs *FS) Root() fsapi.NodeInfo { return fs.server.Root() }

// GetNode implements fsapi.FileSystem (GETATTR).
func (fs *FS) GetNode(id fsapi.NodeID) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.GetNode(id)
}

// Lookup implements fsapi.FileSystem (LOOKUP — one trip per component,
// the §4.3 cost direct lookup cannot avoid on a stateless protocol).
func (fs *FS) Lookup(dir fsapi.NodeID, name string) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.Lookup(dir, name)
}

// Create implements fsapi.FileSystem.
func (fs *FS) Create(dir fsapi.NodeID, name string, mode fsapi.Mode, uid, gid uint32) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.Create(dir, name, mode, uid, gid)
}

// Mkdir implements fsapi.FileSystem.
func (fs *FS) Mkdir(dir fsapi.NodeID, name string, mode fsapi.Mode, uid, gid uint32) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.Mkdir(dir, name, mode, uid, gid)
}

// Symlink implements fsapi.FileSystem.
func (fs *FS) Symlink(dir fsapi.NodeID, name, target string, uid, gid uint32) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.Symlink(dir, name, target, uid, gid)
}

// Link implements fsapi.FileSystem.
func (fs *FS) Link(dir fsapi.NodeID, name string, node fsapi.NodeID) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.Link(dir, name, node)
}

// Unlink implements fsapi.FileSystem.
func (fs *FS) Unlink(dir fsapi.NodeID, name string) error {
	fs.trip()
	return fs.server.Unlink(dir, name)
}

// Rmdir implements fsapi.FileSystem.
func (fs *FS) Rmdir(dir fsapi.NodeID, name string) error {
	fs.trip()
	return fs.server.Rmdir(dir, name)
}

// Rename implements fsapi.FileSystem.
func (fs *FS) Rename(odir fsapi.NodeID, oname string, ndir fsapi.NodeID, nname string) error {
	fs.trip()
	return fs.server.Rename(odir, oname, ndir, nname)
}

// ReadDir implements fsapi.FileSystem (READDIR, one trip per batch).
func (fs *FS) ReadDir(dir fsapi.NodeID, cookie uint64, count int) ([]fsapi.DirEntry, uint64, bool, error) {
	fs.trip()
	return fs.server.ReadDir(dir, cookie, count)
}

// ReadLink implements fsapi.FileSystem.
func (fs *FS) ReadLink(id fsapi.NodeID) (string, error) {
	fs.trip()
	return fs.server.ReadLink(id)
}

// SetAttr implements fsapi.FileSystem.
func (fs *FS) SetAttr(id fsapi.NodeID, attr fsapi.SetAttr) (fsapi.NodeInfo, error) {
	fs.trip()
	return fs.server.SetAttr(id, attr)
}

// ReadAt implements fsapi.FileSystem.
func (fs *FS) ReadAt(id fsapi.NodeID, p []byte, off int64) (int, error) {
	fs.trip()
	return fs.server.ReadAt(id, p, off)
}

// WriteAt implements fsapi.FileSystem.
func (fs *FS) WriteAt(id fsapi.NodeID, p []byte, off int64) (int, error) {
	fs.trip()
	return fs.server.WriteAt(id, p, off)
}

// Sync implements fsapi.FileSystem (COMMIT).
func (fs *FS) Sync() error {
	fs.trip()
	return fs.server.Sync()
}

// StatFS implements fsapi.FileSystem, advertising the revalidation
// requirement that disables whole-path direct lookup (§4.3).
func (fs *FS) StatFS() fsapi.StatFS {
	st := fs.server.StatFS()
	st.Caps.Name = "remotefs"
	st.Caps.Revalidate = true
	return st
}
