package remotefs

import (
	"errors"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/fstest"
	"dircache/internal/memfs"
	"dircache/internal/vclock"
	"dircache/internal/vfs"
)

func TestConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) fsapi.FileSystem {
		return New(memfs.New(memfs.Options{}), Options{RTTNanos: 1})
	})
}

func TestRoundTripAccounting(t *testing.T) {
	fs := New(memfs.New(memfs.Options{}), Options{RTTNanos: 1000})
	var run vclock.Run
	fs.SetClock(&run)
	root := fs.Root().ID // no trip
	if fs.RoundTrips() != 0 {
		t.Fatal("Root charged a trip")
	}
	fs.Lookup(root, "x")
	fs.ReadDir(root, 0, 10)
	if fs.RoundTrips() != 2 {
		t.Fatalf("trips %d, want 2", fs.RoundTrips())
	}
	if run.Nanos() != 2000 {
		t.Fatalf("charged %d, want 2000", run.Nanos())
	}
}

func TestCapabilities(t *testing.T) {
	fs := New(memfs.New(memfs.Options{}), Options{})
	caps := fs.StatFS().Caps
	if !caps.Revalidate || caps.Name != "remotefs" {
		t.Fatalf("caps %+v", caps)
	}
}

// The §4.3 behaviours through the VFS: the fastpath never serves remote
// paths, cached remote entries revalidate at the server on every walk, and
// local paths on the same kernel are unaffected.
func TestNoDirectLookupOnRemote(t *testing.T) {
	k := vfs.NewKernel(vfs.Config{DirCompleteness: true, AggressiveNegatives: true},
		memfs.New(memfs.Options{}))
	// The optimized cache is installed via core; import cycle prevents
	// using it here — the vfs-level revalidation behaviour is observable
	// regardless (see dircache's public API test for the fastpath side).
	root := k.NewTask(cred.Root())
	if err := root.Mkdir("/net", 0o755); err != nil {
		t.Fatal(err)
	}
	remote := New(memfs.New(memfs.Options{}), Options{RTTNanos: 10})
	if _, err := root.Mount(remote, "/net", 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/net/export", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Create("/net/export/file", 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm stats still round-trip to the server each time (revalidation).
	if _, err := root.Stat("/net/export/file"); err != nil {
		t.Fatal(err)
	}
	trips := remote.RoundTrips()
	if _, err := root.Stat("/net/export/file"); err != nil {
		t.Fatal(err)
	}
	delta := remote.RoundTrips() - trips
	if delta < 2 {
		t.Fatalf("warm remote stat made %d trips; want one per remote component", delta)
	}

	// Negative entries are not trusted: each miss consults the server.
	root.Stat("/net/export/ghost")
	trips = remote.RoundTrips()
	if _, err := root.Stat("/net/export/ghost"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal(err)
	}
	if remote.RoundTrips() == trips {
		t.Fatal("negative remote entry served without revalidation")
	}

	// A server-side deletion is observed on the next walk (ESTALE path).
	srv := remote.server.(*memfs.FS)
	exp, _ := srv.Lookup(srv.Root().ID, "export")
	if err := srv.Unlink(exp.ID, "file"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/net/export/file"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("stale remote dentry served after server-side delete: %v", err)
	}
}
