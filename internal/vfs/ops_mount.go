package vfs

import (
	"dircache/internal/fsapi"
)

// Mount attaches fs at path within the task's namespace. Mounting the same
// FS instance at multiple places creates mount aliases sharing one dentry
// tree (§4.3). Mount changes invalidate cached fastpath state below the
// mountpoint, since resolution under it changes meaning.
func (t *Task) Mount(fs fsapi.FileSystem, path string, flags MountFlags) (*Mount, error) {
	if !t.Cred().IsRoot() {
		return nil, fsapi.EPERM
	}
	k := t.k
	ref, err := t.Walk(path, WalkDirectory)
	if err != nil {
		return nil, err
	}
	ns := t.Namespace()
	if ns.mountAt(ref.Mnt, ref.D) != nil {
		return nil, fsapi.EBUSY // one mount per mountpoint per namespace
	}
	end := k.beginMutation(ref.D, InvalMount)
	defer end()

	sb := k.superFor(fs)
	m := &Mount{
		id:         k.idGen.Add(1),
		sb:         sb,
		root:       sb.root,
		flags:      flags,
		parent:     ref.Mnt,
		mountpoint: ref.D,
	}
	ns.addMount(m)
	return m, nil
}

// BindMount makes srcPath's subtree visible at dstPath — a mount alias on
// the same superblock (§4.3).
func (t *Task) BindMount(srcPath, dstPath string, flags MountFlags) (*Mount, error) {
	if !t.Cred().IsRoot() {
		return nil, fsapi.EPERM
	}
	k := t.k
	src, err := t.Walk(srcPath, WalkDirectory)
	if err != nil {
		return nil, err
	}
	dst, err := t.Walk(dstPath, WalkDirectory)
	if err != nil {
		return nil, err
	}
	ns := t.Namespace()
	if ns.mountAt(dst.Mnt, dst.D) != nil {
		return nil, fsapi.EBUSY
	}
	end := k.beginMutation(dst.D, InvalMount)
	defer end()

	m := &Mount{
		id:         k.idGen.Add(1),
		sb:         src.Mnt.sb,
		root:       src.D,
		flags:      flags,
		parent:     dst.Mnt,
		mountpoint: dst.D,
	}
	ns.addMount(m)
	k.aliasEpoch.Add(1)
	return m, nil
}

// Unmount detaches the mount whose root path resolves at path.
func (t *Task) Unmount(path string) error {
	if !t.Cred().IsRoot() {
		return fsapi.EPERM
	}
	k := t.k
	ref, err := t.Walk(path, WalkDirectory)
	if err != nil {
		return err
	}
	m := ref.Mnt
	if ref.D != m.root || m.parent == nil {
		return fsapi.EINVAL // not the root of a (non-namespace-root) mount
	}
	ns := t.Namespace()
	if ns.hasMountsUnder(m) {
		return fsapi.EBUSY
	}
	// Invalidate both sides: paths under the mountpoint change meaning,
	// and the mounted tree's cached full-path state becomes unreachable.
	end := k.beginMutation(m.mountpoint, InvalMount)
	defer end()
	endRoot := k.beginMutation(m.root, InvalMount)
	defer endRoot()
	if !ns.removeMount(m) {
		return fsapi.EINVAL
	}
	return nil
}
