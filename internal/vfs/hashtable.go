package vfs

import (
	"sync"
	"sync/atomic"
)

// SyncMode selects the synchronization era of the dentry hash table,
// reproducing the progression Figure 2 of the paper charts across Linux
// releases.
type SyncMode int

const (
	// SyncRCU (the 3.14 baseline): lock-free readers over atomic bucket
	// chains, with a global rename sequence counter validated around each
	// walk and a reader-writer fallback (RCU-walk → ref-walk).
	SyncRCU SyncMode = iota
	// SyncBucketLock (the ~3.0 era): readers take a per-bucket lock for
	// each hash probe.
	SyncBucketLock
	// SyncBigLock (the 2.6.36 era): one global lock serializes every
	// directory cache operation.
	SyncBigLock
)

func (m SyncMode) String() string {
	switch m {
	case SyncRCU:
		return "rcu"
	case SyncBucketLock:
		return "bucketlock"
	case SyncBigLock:
		return "biglock"
	}
	return "unknown"
}

// tnode is one immutable chain node of the dcache hash table. Chains are
// updated copy-on-write: readers traversing a stale chain see a consistent
// (if slightly old) snapshot, validated by the rename seqcount — the RCU
// analogue.
type tnode struct {
	parentID uint64
	name     string
	d        *Dentry
	next     atomic.Pointer[tnode]
}

type tbucket struct {
	mu   sync.Mutex // writers; also readers in SyncBucketLock mode
	head atomic.Pointer[tnode]
}

// hashTable is the (parent dentry, component name)-keyed dentry index: the
// structure Linux calls the dentry hashtable, here with a selectable
// synchronization era.
type hashTable struct {
	mode    SyncMode
	mask    uint64
	buckets []tbucket
}

func newHashTable(mode SyncMode, buckets int) *hashTable {
	if buckets <= 0 {
		buckets = 1 << 18 // Linux's default dentry_hashtable order
	}
	// round up to a power of two
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &hashTable{
		mode:    mode,
		mask:    uint64(n - 1),
		buckets: make([]tbucket, n),
	}
}

// hashKey mixes (parentID, name) FNV-style, standing in for Linux's
// full_name_hash over the parent pointer and component.
func hashKey(parentID uint64, name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= parentID
	h *= prime
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// lookup finds the live dentry for (parentID, name), or nil. In
// SyncBucketLock mode the bucket lock is held for the probe; in the other
// modes the probe is lock-free (SyncBigLock relies on the kernel-wide lock
// held by the caller).
func (t *hashTable) lookup(parentID uint64, name string) *Dentry {
	b := &t.buckets[hashKey(parentID, name)&t.mask]
	if t.mode == SyncBucketLock {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	for n := b.head.Load(); n != nil; n = n.next.Load() {
		if n.parentID == parentID && n.name == name {
			d := n.d
			if d.IsDead() {
				return nil
			}
			return d
		}
	}
	return nil
}

// insert adds d under (parentID, name). The caller guarantees the key is
// not already present (dcache insertions happen under the parent's lock).
func (t *hashTable) insert(parentID uint64, name string, d *Dentry) {
	b := &t.buckets[hashKey(parentID, name)&t.mask]
	b.mu.Lock()
	n := &tnode{parentID: parentID, name: name, d: d}
	n.next.Store(b.head.Load())
	b.head.Store(n)
	b.mu.Unlock()
}

// remove deletes the entry for (parentID, name, d) by rebuilding the chain
// prefix copy-on-write, so concurrent lock-free readers keep a consistent
// view.
func (t *hashTable) remove(parentID uint64, name string, d *Dentry) {
	b := &t.buckets[hashKey(parentID, name)&t.mask]
	b.mu.Lock()
	defer b.mu.Unlock()
	head := b.head.Load()
	// Find the target node.
	var target *tnode
	for n := head; n != nil; n = n.next.Load() {
		if n.parentID == parentID && n.name == name && n.d == d {
			target = n
			break
		}
	}
	if target == nil {
		return
	}
	// Rebuild the prefix before target, splicing to target's tail.
	tail := target.next.Load()
	newHead := tail
	var last *tnode
	for n := head; n != target; n = n.next.Load() {
		cp := &tnode{parentID: n.parentID, name: n.name, d: n.d}
		if last == nil {
			newHead = cp
		} else {
			last.next.Store(cp)
		}
		last = cp
	}
	if last != nil {
		last.next.Store(tail)
	}
	b.head.Store(newHead)
}

// stats walks every bucket and reports chain length distribution (used by
// the evaluation discussion of bucket utilization in §6.5).
func (t *hashTable) chainStats() (empty, one, two, more int) {
	for i := range t.buckets {
		n := 0
		for c := t.buckets[i].head.Load(); c != nil; c = c.next.Load() {
			n++
		}
		switch {
		case n == 0:
			empty++
		case n == 1:
			one++
		case n == 2:
			two++
		default:
			more++
		}
	}
	return
}
