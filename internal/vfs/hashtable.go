package vfs

import (
	"sync"
	"sync/atomic"

	"dircache/internal/slab"
)

// SyncMode selects the synchronization era of the dentry hash table,
// reproducing the progression Figure 2 of the paper charts across Linux
// releases.
type SyncMode int

const (
	// SyncRCU (the 3.14 baseline): lock-free readers over atomic bucket
	// chains, with a global rename sequence counter validated around each
	// walk and a reader-writer fallback (RCU-walk → ref-walk).
	SyncRCU SyncMode = iota
	// SyncBucketLock (the ~3.0 era): readers take a per-bucket lock for
	// each hash probe.
	SyncBucketLock
	// SyncBigLock (the 2.6.36 era): one global lock serializes every
	// directory cache operation.
	SyncBigLock
)

func (m SyncMode) String() string {
	switch m {
	case SyncRCU:
		return "rcu"
	case SyncBucketLock:
		return "bucketlock"
	case SyncBigLock:
		return "biglock"
	}
	return "unknown"
}

// tnode is one chain node of the dcache hash table, stored in a slab
// arena and linked by handles rather than pointers, so the GC sees chunk
// headers instead of one object per cached name. A node's fields are
// written before it is published into a chain and frozen thereafter;
// removal unlinks the node in place (readers inside an epoch section may
// keep traversing through it — its contents and next link survive until
// the grace period ends and the slot is recycled). This replaces the old
// copy-on-write chain rebuild: removal is O(position) pointer chasing
// with zero allocation, which is what makes bulk teardown (rm -r) cheap.
type tnode struct {
	parentID uint64
	name     string
	dref     uint64 // packed slab.Ref of the dentry
	next     atomic.Uint32
}

type tbucket struct {
	mu   sync.Mutex // writers; also readers in SyncBucketLock mode
	head atomic.Uint32
}

// hashTable is the (parent dentry, component name)-keyed dentry index: the
// structure Linux calls the dentry hashtable, here with a selectable
// synchronization era and slab-backed chains.
type hashTable struct {
	mode     SyncMode
	mask     uint64
	buckets  []tbucket
	nodes    *slab.Arena[tnode]
	dentries *slab.Arena[Dentry]
}

func newHashTable(mode SyncMode, buckets int, nodes *slab.Arena[tnode], dentries *slab.Arena[Dentry]) *hashTable {
	if buckets <= 0 {
		buckets = 1 << 18 // Linux's default dentry_hashtable order
	}
	// round up to a power of two
	n := 1
	for n < buckets {
		n <<= 1
	}
	return &hashTable{
		mode:     mode,
		mask:     uint64(n - 1),
		buckets:  make([]tbucket, n),
		nodes:    nodes,
		dentries: dentries,
	}
}

// hashKey mixes (parentID, name) FNV-style, standing in for Linux's
// full_name_hash over the parent pointer and component.
func hashKey(parentID uint64, name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h ^= parentID
	h *= prime
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// lookup finds the live dentry for (parentID, name), or nil. Dead or
// stale-slot entries are skipped, not terminal: teardown is lazy, so a
// chain may hold a dead node for the key while a fresh live one (always
// prepended, hence found first) coexists. In SyncBucketLock mode the
// bucket lock is held for the probe; in the other modes the probe is
// lock-free (SyncBigLock relies on the kernel-wide lock held by the
// caller). Callers are inside an epoch section.
func (t *hashTable) lookup(parentID uint64, name string) *Dentry {
	b := &t.buckets[hashKey(parentID, name)&t.mask]
	if t.mode == SyncBucketLock {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	for h := b.head.Load(); h != 0; {
		n := t.nodes.Get(slab.Handle(h))
		if n.parentID == parentID && n.name == name {
			if d := t.dentries.Resolve(slab.Unpack(n.dref)); d != nil && !d.IsDead() {
				return d
			}
		}
		h = n.next.Load()
	}
	return nil
}

// insert adds d under (parentID, name). The caller guarantees no live
// entry for the key is present (dcache insertions happen under the
// parent's lock); a dead entry awaiting the sweeper may linger further
// down the chain and is shadowed by the prepend.
func (t *hashTable) insert(parentID uint64, name string, d *Dentry) {
	r, n := t.nodes.Alloc()
	n.parentID = parentID
	n.name = name
	n.dref = d.self.Pack()
	b := &t.buckets[hashKey(parentID, name)&t.mask]
	b.mu.Lock()
	n.next.Store(b.head.Load())
	b.head.Store(uint32(r.H))
	b.mu.Unlock()
}

// remove unlinks the entry for (parentID, name, d) in place and retires
// its node to the arena's limbo. Concurrent lock-free readers that
// already stepped onto the node keep a coherent view: its fields and
// next link are preserved until every section from its epoch has exited.
func (t *hashTable) remove(parentID uint64, name string, d *Dentry) {
	want := d.self.Pack()
	b := &t.buckets[hashKey(parentID, name)&t.mask]
	b.mu.Lock()
	var prev *tnode
	for h := b.head.Load(); h != 0; {
		n := t.nodes.Get(slab.Handle(h))
		if n.parentID == parentID && n.name == name && n.dref == want {
			next := n.next.Load()
			if prev == nil {
				b.head.Store(next)
			} else {
				prev.next.Store(next)
			}
			b.mu.Unlock()
			t.nodes.Retire(slab.Ref{H: slab.Handle(h), G: t.nodes.GenOf(slab.Handle(h))})
			return
		}
		prev = n
		h = n.next.Load()
	}
	b.mu.Unlock()
}

// stats walks every bucket and reports chain length distribution (used by
// the evaluation discussion of bucket utilization in §6.5). The caller
// holds an epoch section.
func (t *hashTable) chainStats() (empty, one, two, more int) {
	for i := range t.buckets {
		n := 0
		for h := t.buckets[i].head.Load(); h != 0; {
			c := t.nodes.Get(slab.Handle(h))
			n++
			h = c.next.Load()
		}
		switch {
		case n == 0:
			empty++
		case n == 1:
			one++
		case n == 2:
			two++
		default:
			more++
		}
	}
	return
}

// forEachRef calls fn for every chain node's (parentID, name, dref)
// triple — the auditor's raw view for the slab_liveness check. The
// caller holds an epoch section; the scan is lock-free and may observe
// concurrent inserts/removes (the auditor's coherence stamp discards
// such passes).
func (t *hashTable) forEachRef(fn func(parentID uint64, name string, dref slab.Ref) bool) {
	for i := range t.buckets {
		for h := t.buckets[i].head.Load(); h != 0; {
			c := t.nodes.Get(slab.Handle(h))
			if !fn(c.parentID, c.name, slab.Unpack(c.dref)) {
				return
			}
			h = c.next.Load()
		}
	}
}
