package vfs

import (
	"strings"

	"dircache/internal/telemetry"
)

// Remote invalidation: the entry points a sharded deployment uses to apply
// a peer cache instance's mutations locally. A shard that learns (via the
// coherence journal subscription) that another shard renamed, unlinked, or
// chmodded a path it may have cached does not replay the mutation — it
// discards its cached view of that path wholesale, fail-closed: the next
// walk re-reads ground truth from the shared backend.

// RootDentry returns the root dentry of the kernel's initial namespace.
func (k *Kernel) RootDentry() *Dentry {
	return k.initNS.root.sb.root
}

// splitAbs splits a canonical absolute path into components ("/" → nil).
func splitAbs(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

// InvalidateCachedPath applies a peer-originated invalidation for path.
// The descent is cached-only — no backend I/O — because a path this
// instance never cached cannot be stale here:
//
//   - full path cached: the dentry's subtree is torn down under a
//     beginMutation(InvalRemote) bracket (epoch bump + batch shootdown →
//     DLHT entries and shortcut resume points under the prefix die), and
//     the parent loses DIR_COMPLETE (its child set changed remotely).
//   - parent cached but the final component is not: the parent's
//     completeness and cached listing are dropped — a remotely created
//     binding may now exist that an authoritative listing would miss.
//   - an earlier component is not cached: no local state covers the
//     path; nothing to do.
//
// Returns the number of dentries torn down.
func (k *Kernel) InvalidateCachedPath(path string) int {
	comps := splitAbs(path)
	root := k.RootDentry()
	if len(comps) == 0 {
		// "/": the peer mutated the root itself. Kill every cached child
		// subtree and drop root completeness.
		end := k.beginMutation(root, InvalRemote)
		defer end()
		unlock := k.lockBig()
		defer unlock()
		k.renameWriteLock()
		defer k.renameWriteUnlock()
		k.cacheMutBegin()
		defer k.cacheMutEnd()
		n := 0
		root.EachChild(func(c *Dentry) { n += k.killSubtreeLocked(c) })
		k.dropCompleteness(root, "remote")
		return n
	}
	d := root
	for i, c := range comps {
		child := d.child(c)
		if child == nil || child.IsDead() {
			if i == len(comps)-1 {
				// The binding itself is not cached but its parent is:
				// the parent's listing/completeness may now be wrong.
				k.invalidateRemoteBinding(d)
			}
			return 0
		}
		d = child
	}
	parent := d.Parent()
	end := k.beginMutation(d, InvalRemote)
	defer end()
	unlock := k.lockBig()
	defer unlock()
	k.renameWriteLock()
	defer k.renameWriteUnlock()
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	if d.IsDead() {
		return 0
	}
	n := k.killSubtreeLocked(d)
	if parent != nil {
		k.dropCompleteness(parent, "remote")
	}
	return n
}

// invalidateRemoteBinding handles the "parent cached, binding not" case:
// the parent directory's authoritative listing claim is dropped so the
// next readdir/miss goes back to the backend.
func (k *Kernel) invalidateRemoteBinding(parent *Dentry) {
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	k.dropCompleteness(parent, "remote")
}

// dropCompleteness clears DIR_COMPLETE and the cached listing on d,
// journaling the transition when the flag was actually set.
func (k *Kernel) dropCompleteness(d *Dentry, why string) {
	wasComplete := d.Flags()&DComplete != 0
	d.clearFlags(DComplete)
	d.invalidateList()
	if wasComplete {
		if tel := k.journal(); tel != nil {
			tel.Emit(telemetry.JDirIncomplete, d.ID(), 0, why)
		}
	}
}

// CachedPathState classifies what this instance's cache currently claims
// about a path, without touching the backend. The cross-shard auditor uses
// it to compare each shard's cached claim against ground truth: a MISS is
// never stale (the next walk consults the backend), but a positive or
// negative claim that contradicts the backend after coherence has
// converged is a stale read.
type CachedPathState int

const (
	// CachedMiss: some component of the path is not cached; the cache
	// holds no claim about the path.
	CachedMiss CachedPathState = iota
	// CachedPositive: the full path is cached with a live inode.
	CachedPositive
	// CachedNegative: the path is cached as known-absent (a negative
	// dentry), or its parent is DIR_COMPLETE without the binding — both
	// authorize an ENOENT answer without consulting the backend.
	CachedNegative
)

// CachedPathClaim reports the cache's current claim about path (see
// CachedPathState). The probe is read-only and lock-light; racing
// mutations may yield a transient claim, so callers quiesce first.
func (k *Kernel) CachedPathClaim(path string) CachedPathState {
	comps := splitAbs(path)
	d := k.RootDentry()
	for i, c := range comps {
		child := d.child(c)
		if child == nil || child.IsDead() {
			if i == len(comps)-1 && d.Flags()&DComplete != 0 && !d.IsDead() {
				// Complete parent without the binding: the cache would
				// answer ENOENT authoritatively.
				return CachedNegative
			}
			return CachedMiss
		}
		d = child
	}
	if d.IsNegative() {
		return CachedNegative
	}
	if d.Inode() == nil {
		return CachedMiss
	}
	return CachedPositive
}
