package vfs

import (
	"dircache/internal/slab"
	"dircache/internal/telemetry"
)

// This file is the VFS half of the coherence-observability layer: the
// cache-structure stamp audit passes validate against, the journal
// emission helper, and the dentry-cache introspection snapshot.

// cacheMutBegin / cacheMutEnd bracket every multi-step structural change
// to the dentry cache (insert, teardown, rename move, eviction,
// completeness transition). The pair implements a multi-writer seqlock:
// active counts in-flight brackets, seq counts completed ones (bumped
// before the active decrement, so a reader seeing active == 0 has the
// completed work in seq). A reader observing equal seq and active == 0 at
// both edges of a scan is guaranteed no bracket overlapped the scan.
func (k *Kernel) cacheMutBegin() { k.cacheMutActive.Add(1) }

func (k *Kernel) cacheMutEnd() {
	k.cacheMutSeq.Add(1)
	k.cacheMutActive.Add(-1)
}

// CoherenceStamp returns the cache-structure stamp: the completed-change
// sequence and whether the cache is structurally quiescent right now.
// The invariant auditor reads it before and after a pass; a pass is only
// trusted if both reads are quiet and the sequences match.
func (k *Kernel) CoherenceStamp() (seq uint64, quiet bool) {
	return k.cacheMutSeq.Load(), k.cacheMutActive.Load() == 0
}

// CacheMutSeq returns the completed structural-change count (diagnostics).
func (k *Kernel) CacheMutSeq() uint64 { return k.cacheMutSeq.Load() }

// ChrootCount reports how many Chroot calls have happened kernel-wide.
func (k *Kernel) ChrootCount() uint64 { return k.chrootCount.Load() }

// journal returns the telemetry sink iff it is attached and enabled, nil
// otherwise. Mutation paths load it once and emit through the non-nil
// pointer; the disabled cost stays one atomic load + branch.
func (k *Kernel) journal() *telemetry.Telemetry {
	tel := k.tel.Load()
	if !tel.On() {
		return nil
	}
	return tel
}

// ForEachDentry calls fn for every dentry currently in the cache. The
// shard snapshot is taken under each shard lock but fn runs outside it,
// so fn may take dentry locks. Concurrent allocations/evictions may be
// missed or seen dead — callers needing a consistent view validate with
// CoherenceStamp.
func (k *Kernel) ForEachDentry(fn func(*Dentry)) {
	// Pin an epoch so slab slots named by the snapshot cannot be
	// recycled while fn runs against them.
	ep := k.gate.Enter()
	defer k.gate.Exit(ep)
	for i := range k.lru.shards {
		sh := &k.lru.shards[i]
		sh.mu.Lock()
		snap := make([]slab.Ref, 0, len(sh.entries))
		for h, g := range sh.entries {
			snap = append(snap, slab.Ref{H: h, G: g})
		}
		sh.mu.Unlock()
		for _, r := range snap {
			if d := k.dentries.Resolve(r); d != nil {
				fn(d)
			}
		}
	}
}

// CacheIntrospection is an occupancy snapshot of the dentry cache: how
// many of each dentry kind are cached, DIR_COMPLETE coverage, and the
// (parent,name) hash table's chain-length distribution. Counts are
// gathered dentry-by-dentry without a global lock, so under concurrent
// churn they are approximate (each individually valid, cross-field skew
// possible).
type CacheIntrospection struct {
	Dentries     int `json:"dentries"`
	Negative     int `json:"negative"`
	DeepNegative int `json:"deep_negative"`
	NotDir       int `json:"not_dir"`
	Alias        int `json:"alias"`
	Unhydrated   int `json:"unhydrated"`
	Dirs         int `json:"dirs"`
	CompleteDirs int `json:"complete_dirs"`
	Pinned       int `json:"pinned"`
	// InLookup counts live in-lookup placeholders. They are gauged from a
	// dedicated kernel counter: placeholders are deliberately invisible to
	// the LRU shards this snapshot iterates.
	InLookup int `json:"in_lookup"`

	HashEmpty int `json:"hash_empty"`
	Hash1     int `json:"hash_1"`
	Hash2     int `json:"hash_2"`
	HashMore  int `json:"hash_more"`

	MutationSeq   uint64 `json:"mutation_seq"`
	EvictionEpoch uint64 `json:"eviction_epoch"`
}

// Introspect snapshots the dentry cache's occupancy.
func (k *Kernel) Introspect() CacheIntrospection {
	var s CacheIntrospection
	k.ForEachDentry(func(d *Dentry) {
		if d.IsDead() {
			return
		}
		s.Dentries++
		fl := d.Flags()
		if fl&DNegative != 0 {
			s.Negative++
		}
		if fl&DDeepNegative != 0 {
			s.DeepNegative++
		}
		if fl&DNotDir != 0 {
			s.NotDir++
		}
		if fl&DAlias != 0 {
			s.Alias++
		}
		if fl&DUnhydrated != 0 {
			s.Unhydrated++
		}
		if d.IsDir() && fl&DNegative == 0 {
			s.Dirs++
			if fl&DComplete != 0 {
				s.CompleteDirs++
			}
		}
		if d.refs.Load() > 0 {
			s.Pinned++
		}
	})
	s.InLookup = int(k.inLookupCount.Load())
	s.HashEmpty, s.Hash1, s.Hash2, s.HashMore = k.table.chainStats()
	s.MutationSeq = k.cacheMutSeq.Load()
	s.EvictionEpoch = k.lru.Epoch()
	return s
}
