package vfs

import (
	"fmt"
	"sync"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
)

// TestStressWalkVsMutate runs concurrent walkers against concurrent
// rename/chmod/create/unlink/Shrink traffic. It is primarily a race
// detector gate (`make race`) for the sharded LRU, the generation-stamp
// touch, and the striped counters; without -race it still smoke-tests
// that lock-free walks never return torn results while the tree churns.
func TestStressWalkVsMutate(t *testing.T) {
	for _, mode := range []SyncMode{SyncRCU, SyncBucketLock} {
		t.Run(mode.String(), func(t *testing.T) {
			k, root := newKernel(t, Config{
				SyncMode:            mode,
				CacheCapacity:       96,
				DirCompleteness:     true,
				AggressiveNegatives: true,
			})
			for i := 0; i < 64; i++ {
				if err := root.Create(fmt.Sprintf("/tmp/s%03d", i), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			iters := 3000
			if testing.Short() {
				iters = 300
			}
			var wg sync.WaitGroup

			// Walkers: stable paths must keep resolving; missing paths
			// must keep failing with ENOENT.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					task := k.NewTask(cred.Root())
					for i := 0; i < iters; i++ {
						if _, err := task.Stat("/usr/include/sys/types.h"); err != nil {
							panic(fmt.Sprintf("stable path vanished: %v", err))
						}
						task.Stat(fmt.Sprintf("/tmp/s%03d", (seed*31+i)%64))
						if _, err := task.Stat("/etc/enoent"); err == nil {
							panic("missing path resolved")
						}
						task.Stat("/home/alice/projects/code.go") // may ENOENT mid-rename
					}
				}(g)
			}

			// Renamer: swings a directory back and forth under the walkers.
			wg.Add(1)
			go func() {
				defer wg.Done()
				task := k.NewTask(cred.Root())
				for i := 0; i < iters; i++ {
					task.Rename("/home/alice/projects", "/home/alice/projects2")
					task.Rename("/home/alice/projects2", "/home/alice/projects")
				}
			}()

			// Chmodder: permission-relevant metadata churn (invalidation
			// edges under the walkers' prefix checks).
			wg.Add(1)
			go func() {
				defer wg.Done()
				task := k.NewTask(cred.Root())
				for i := 0; i < iters; i++ {
					task.Chmod("/usr/include", fsapi.Mode(0o755))
					task.Chmod("/usr/include", fsapi.Mode(0o711))
				}
			}()

			// Churner: create/unlink keeps the LRU allocating while the
			// shrinker runs.
			wg.Add(1)
			go func() {
				defer wg.Done()
				task := k.NewTask(cred.Root())
				for i := 0; i < iters; i++ {
					p := fmt.Sprintf("/tmp/churn%02d", i%16)
					task.Create(p, 0o644)
					task.Unlink(p)
				}
			}()

			// Shrinker: explicit eviction pressure on top of capacity.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters/4; i++ {
					k.Shrink(8)
				}
			}()

			wg.Wait()

			// The counters must have stayed coherent: snapshots are sums
			// of monotonic cells, so totals can't go negative or lose the
			// walkers' traffic.
			st := k.Stats()
			if st.Lookups <= 0 || st.SlowWalks <= 0 {
				t.Fatalf("stats lost traffic: %+v", st)
			}
			if st.Evictions <= 0 {
				t.Fatal("shrinker never evicted under pressure")
			}
			if _, err := root.Stat("/usr/include/sys/types.h"); err != nil {
				t.Fatalf("tree damaged by stress run: %v", err)
			}
		})
	}
}
