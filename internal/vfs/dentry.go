// Package vfs implements the virtual file system layer: dentries, inodes,
// mounts and namespaces, permission checking (DAC + LSM), the baseline
// Linux-style directory cache with a component-at-a-time walk, negative
// dentries, an LRU shrinker, and the full path-based operation surface.
//
// The paper's optimizations plug in through two seams:
//
//   - Config feature flags enable the VFS-level hit-rate optimizations
//     (§5): directory completeness caching and aggressive negative
//     dentries.
//   - The Hooks interface lets internal/core install the §3 fastpath
//     (DLHT + PCC + signatures), coherence callbacks, symlink aliasing and
//     deep negative dentries without the VFS knowing any of its types.
package vfs

import (
	"sync"
	"sync/atomic"

	"dircache/internal/fsapi"
	"dircache/internal/slab"
)

// DentryFlags describe a dentry's cache state. Flags are manipulated
// atomically so the lock-free (RCU-era) read path can validate them.
type DentryFlags uint32

const (
	// DNegative: the name is known not to exist (negative dentry).
	DNegative DentryFlags = 1 << iota
	// DUnhydrated: created from a readdir result; existence and type are
	// known but the inode has not been fetched (paper §5.1: "dentries
	// without an inode").
	DUnhydrated
	// DComplete: all children of this directory are in the cache (§5.1).
	DComplete
	// DMounted: some namespace has a mount on this dentry (check the
	// mount table when crossing).
	DMounted
	// DAlias: a symlink-alias dentry created by the fastpath (§4.2); its
	// Target redirects to the real dentry.
	DAlias
	// DDeepNegative: a negative dentry synthesized under another negative
	// dentry or under a file (§5.2).
	DDeepNegative
	// DNotDir: this (deep) negative dentry represents an ENOTDIR failure
	// rather than ENOENT (§5.2).
	DNotDir
	// DDead: evicted/unlinked; lock-free readers must discard it.
	DDead
	// DInLookup: a placeholder installed in the parent's child map while
	// the first missing walk's backend Lookup is in flight. Concurrent
	// misses on the same (parent, name) block on its resolution instead
	// of issuing duplicate FS calls (the d_in_lookup singleflight).
	// In-lookup dentries are invisible everywhere else: never in the
	// hash table, never in the LRU, skipped by readdir snapshots and
	// audits. The flag is cleared (under the parent's lock) when the
	// winner resolves the placeholder positive or negative.
	DInLookup
)

// parentName is the atomically-swapped (parent, name) pair, so the
// lock-free walk can read a consistent identity while a rename is moving
// the dentry.
type parentName struct {
	parent *Dentry
	name   string
}

// Dentry is one directory cache entry: a (parent, name) → inode binding,
// possibly negative. Exported methods that read identity or flags are safe
// without locks; structural changes happen inside the VFS under d.mu.
type Dentry struct {
	id uint64

	// self is the dentry's own slab reference: the generation-tagged
	// handle under which the LRU, hash-table chains, and fastpath state
	// refer to it. Set at allocation, immutable until the slot is
	// recycled.
	self slab.Ref

	pn    atomic.Pointer[parentName]
	flags atomic.Uint32

	inode atomic.Pointer[Inode]
	sb    *Super

	// hint fields let an unhydrated dentry be hydrated with GetNode
	// instead of a directory search.
	hintID   fsapi.NodeID
	hintType fsapi.FileType

	// target of a DAlias dentry: the real dentry this alias redirects
	// to, stored as a packed slab.Ref so a recycled target slot
	// self-invalidates instead of redirecting to the new tenant.
	target atomic.Uint64

	// linkBody caches a symlink's target string after first read.
	linkBody atomic.Pointer[string]

	mu       sync.Mutex
	children map[string]*Dentry
	nkids    atomic.Int32 // cached len(children): pins against eviction

	// completeList caches the directory's rendered listing while the
	// dentry is DComplete and no child has changed — the dirent buffer a
	// repeated readdir copies out of (§5.1). Guarded by mu.
	completeList []fsapi.DirEntry
	listValid    bool

	refs atomic.Int32 // open files, cwd/root references

	// fast is the per-dentry state owned by the installed Hooks (the
	// paper's struct fast_dentry). Set once at allocation, read-only
	// afterwards.
	fast any

	// lastUsed is the LRU generation stamp: stored on every cache hit
	// (lock-free), compared by the shrinker to pick cold victims.
	lastUsed atomic.Uint64

	// inLookup is the singleflight rendezvous while DInLookup is set:
	// waiters block on done, then read the outcome the winner stored.
	// Written under the parent's mu; read by waiters after done closes.
	inLookup *inLookupState

	// missStreak counts consecutive slow-path backend misses under this
	// directory; crossing Config.BulkAfter on a CheapReadDir file system
	// triggers readdir-driven bulk population. Reset on bulk population
	// and on readdir-established completeness.
	missStreak atomic.Int32
}

// inLookupState carries one in-flight miss resolution. The winner closes
// done exactly once after storing err; waiters must not touch err before
// done is closed.
type inLookupState struct {
	done chan struct{}
	err  error // nil = positive; fsapi.ENOENT = negative; else backend error
}

// ID returns the dentry's unique, never-reused identity (the analogue of
// the kernel dentry's virtual address as a stable token).
func (d *Dentry) ID() uint64 { return d.id }

// Name returns the dentry's current component name.
func (d *Dentry) Name() string { return d.pn.Load().name }

// Parent returns the dentry's current parent (nil for a superblock root).
func (d *Dentry) Parent() *Dentry { return d.pn.Load().parent }

// Flags returns the current flag set.
func (d *Dentry) Flags() DentryFlags { return DentryFlags(d.flags.Load()) }

func (d *Dentry) setFlags(f DentryFlags)   { d.flags.Or(uint32(f)) }
func (d *Dentry) clearFlags(f DentryFlags) { d.flags.And(^uint32(f)) }

// IsNegative reports whether the dentry is negative (including deep).
func (d *Dentry) IsNegative() bool { return d.Flags()&DNegative != 0 }

// IsDead reports whether the dentry has been evicted or killed.
func (d *Dentry) IsDead() bool { return d.Flags()&DDead != 0 }

// Inode returns the attached inode, or nil for negative/unhydrated
// dentries.
func (d *Dentry) Inode() *Inode { return d.inode.Load() }

// Super returns the superblock owning this dentry.
func (d *Dentry) Super() *Super { return d.sb }

// SelfRef returns the dentry's own generation-tagged slab reference.
// Resolving it through the kernel fails once the dentry's slot has been
// retired, which is how long-lived holders (fastpath resume points,
// alias targets) detect recycling.
func (d *Dentry) SelfRef() slab.Ref { return d.self }

// Target returns the alias redirect target for DAlias dentries, or nil
// when the target's slab slot has been retired or recycled since the
// alias was created.
func (d *Dentry) Target() *Dentry {
	return d.sb.k.DentryFromRef(slab.Unpack(d.target.Load()))
}

// setTarget points the alias redirect at t.
func (d *Dentry) setTarget(t *Dentry) { d.target.Store(t.self.Pack()) }

// Fast returns the hook-owned per-dentry state installed at allocation.
func (d *Dentry) Fast() any { return d.fast }

// Ref pins the dentry against eviction.
func (d *Dentry) Ref() { d.refs.Add(1) }

// Unref releases a pin.
func (d *Dentry) Unref() { d.refs.Add(-1) }

// IsDir reports whether the dentry currently refers to a directory
// (unhydrated dentries answer from their readdir type hint).
func (d *Dentry) IsDir() bool {
	if ino := d.Inode(); ino != nil {
		return ino.Mode().IsDir()
	}
	return d.Flags()&DUnhydrated != 0 && d.hintType == fsapi.TypeDirectory
}

// IsSymlink reports whether the dentry currently refers to a symlink.
func (d *Dentry) IsSymlink() bool {
	if ino := d.Inode(); ino != nil {
		return ino.Mode().IsSymlink()
	}
	return d.Flags()&DUnhydrated != 0 && d.hintType == fsapi.TypeSymlink
}

// EachChild calls fn for every cached child (including negatives, aliases
// and deep negatives) under d.mu. fn must not re-enter the dentry tree.
func (d *Dentry) EachChild(fn func(*Dentry)) {
	d.mu.Lock()
	kids := make([]*Dentry, 0, len(d.children))
	for _, c := range d.children {
		kids = append(kids, c)
	}
	d.mu.Unlock()
	for _, c := range kids {
		fn(c)
	}
}

// Child returns the cached child dentry by name (including negatives and
// aliases), or nil. Exported for the fastpath hooks.
func (d *Dentry) Child(name string) *Dentry { return d.child(name) }

// ChildCount returns the number of cached children. Exported so the
// fastpath hooks can pick between per-dentry and batched invalidation.
func (d *Dentry) ChildCount() int { return int(d.nkids.Load()) }

// child returns the cached child by name, under d.mu.
func (d *Dentry) child(name string) *Dentry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.children[name]
}

// attachChild links c under d (c's pn must already point at d).
func (d *Dentry) attachChild(c *Dentry) {
	d.mu.Lock()
	if d.children == nil {
		d.children = make(map[string]*Dentry, 4)
	}
	d.children[c.Name()] = c
	d.listValid = false
	d.mu.Unlock()
	d.nkids.Add(1)
}

// detachChild unlinks the named child from d's children map.
func (d *Dentry) detachChild(name string) {
	d.mu.Lock()
	if _, ok := d.children[name]; ok {
		delete(d.children, name)
		d.nkids.Add(-1)
	}
	d.listValid = false
	d.mu.Unlock()
}

// invalidateList drops the cached listing (child set or a child's
// identity changed).
func (d *Dentry) invalidateList() {
	d.mu.Lock()
	d.listValid = false
	d.mu.Unlock()
}

// reset reinitializes a freshly allocated (possibly recycled) arena slot
// for a new tenant. Every field is restored to its zero state explicitly
// rather than by struct assignment: the embedded mutex must not be
// copied over, and stale contents from the previous tenant (flags, link
// body, child map) must not leak into the new identity. Callers publish
// no reference to the dentry before reset returns, so plain stores are
// safe; the atomics are reset with atomic stores anyway because stale
// in-flight readers from the previous tenant's grace period may still
// load them (and discard the result via the generation check).
func (d *Dentry) reset(id uint64, self slab.Ref, sb *Super) {
	d.id = id
	d.self = self
	d.pn.Store(nil)
	d.flags.Store(0)
	d.inode.Store(nil)
	d.sb = sb
	d.hintID = 0
	d.hintType = 0
	d.target.Store(0)
	d.linkBody.Store(nil)
	d.children = nil
	d.nkids.Store(0)
	d.completeList = nil
	d.listValid = false
	d.refs.Store(0)
	d.fast = nil
	d.lastUsed.Store(0)
	d.inLookup = nil
	d.missStreak.Store(0)
}

// PathTo renders the dentry's path from the superblock root ("/" rooted at
// this dentry's sb), for diagnostics and signature (re)construction. It is
// not canonical across mounts; callers that need a namespace path must
// compose mounts themselves.
func (d *Dentry) PathTo() string {
	var comps []string
	n := 0
	for cur := d; cur != nil; {
		pn := cur.pn.Load()
		if pn.parent == nil {
			break
		}
		comps = append(comps, pn.name)
		n += len(pn.name) + 1
		cur = pn.parent
	}
	if len(comps) == 0 {
		return "/"
	}
	buf := make([]byte, 0, n)
	for i := len(comps) - 1; i >= 0; i-- {
		buf = append(buf, '/')
		buf = append(buf, comps[i]...)
	}
	return string(buf)
}
