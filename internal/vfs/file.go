package vfs

import (
	"sync"

	"dircache/internal/fsapi"
	"dircache/internal/telemetry"
)

// File is an open file description: position, flags, and — for
// directories — the readdir cursor that drives §5.1's completeness
// tracking.
type File struct {
	t     *Task
	ref   PathRef
	ino   *Inode
	flags OpenFlag

	mu  sync.Mutex
	pos int64

	// Directory iteration state.
	dirCookie        uint64
	dirEOF           bool
	dirSeeked        bool   // lseek() other than rewind: completeness is off
	startEpoch       uint64 // eviction epoch at (re)wind
	dirStarted       bool
	cachedList       []fsapi.DirEntry // snapshot when serving from the dcache
	cachedIdx        int
	servingFromCache bool

	// release drops the FS-level node pin taken at open (open-unlinked
	// file support).
	release func()

	closed bool
}

// Path returns the file's resolved location.
func (f *File) Path() PathRef { return f.ref }

// Dentry returns the file's dentry.
func (f *File) Dentry() *Dentry { return f.ref.D }

// Stat returns the file's current metadata.
func (f *File) Stat() (fsapi.NodeInfo, error) {
	if f.closed {
		return fsapi.NodeInfo{}, fsapi.EBADF
	}
	return f.ino.Info(), nil
}

// Close releases the handle.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fsapi.EBADF
	}
	f.closed = true
	f.ref.D.Unref()
	if f.release != nil {
		f.release()
	}
	return nil
}

// Read reads from the current position.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fsapi.EBADF
	}
	if f.flags&O_ACCMODE == O_WRONLY {
		return 0, fsapi.EBADF
	}
	n, err := f.ref.D.sb.fs.ReadAt(f.ino.ID(), p, f.pos)
	f.pos += int64(n)
	return n, err
}

// ReadAt reads at an absolute offset without moving the position.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, fsapi.EBADF
	}
	if f.flags&O_ACCMODE == O_WRONLY {
		return 0, fsapi.EBADF
	}
	return f.ref.D.sb.fs.ReadAt(f.ino.ID(), p, off)
}

// Write writes at the current position (or EOF with O_APPEND).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fsapi.EBADF
	}
	if f.flags&O_ACCMODE == O_RDONLY {
		return 0, fsapi.EBADF
	}
	if f.flags&O_APPEND != 0 {
		f.pos = f.ino.Size()
	}
	n, err := f.ref.D.sb.fs.WriteAt(f.ino.ID(), p, f.pos)
	f.pos += int64(n)
	if err == nil {
		f.t.k.refreshInode(f.ref.D)
	}
	return n, err
}

// Seek repositions the file. For directories, Seek(0, 0) is rewinddir;
// any other seek disables completeness accumulation for this handle
// (§5.1: a series of readdirs "without an lseek() on the directory
// handle").
func (f *File) Seek(off int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, fsapi.EBADF
	}
	var base int64
	switch whence {
	case 0:
		base = 0
	case 1:
		base = f.pos
	case 2:
		base = f.ino.Size()
	default:
		return 0, fsapi.EINVAL
	}
	npos := base + off
	if npos < 0 {
		return 0, fsapi.EINVAL
	}
	if f.ino.Mode().IsDir() {
		if npos == 0 {
			f.rewindDirLocked()
		} else {
			f.dirSeeked = true
			f.dirCookie = uint64(npos)
			f.cachedList = nil
			f.servingFromCache = false
		}
	}
	f.pos = npos
	return npos, nil
}

func (f *File) rewindDirLocked() {
	f.dirCookie = 0
	f.dirEOF = false
	f.dirSeeked = false
	f.dirStarted = false
	f.cachedList = nil
	f.cachedIdx = 0
	f.servingFromCache = false
}

// ReadDir returns up to n directory entries (all remaining if n <= 0),
// advancing the cursor. When the directory is DIR_COMPLETE and
// completeness caching is enabled, the listing is served from the dcache
// without calling the low-level file system (§5.1); otherwise entries come
// from the FS and are inserted into the cache as inode-less dentries, and
// a full uninterrupted pass marks the directory complete.
func (f *File) ReadDir(n int) ([]fsapi.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fsapi.EBADF
	}
	if !f.ino.Mode().IsDir() {
		return nil, fsapi.ENOTDIR
	}
	k := f.t.k
	d := f.ref.D

	if !f.dirStarted {
		f.dirStarted = true
		f.startEpoch = k.lru.Epoch()
		if k.cfg.DirCompleteness && d.Flags()&DComplete != 0 && !f.dirSeeked {
			f.servingFromCache = true
			f.cachedList = snapshotChildren(d)
		}
	}

	if f.servingFromCache {
		k.stats.cell().readdirCached.Add(1)
		if n <= 0 || n > len(f.cachedList)-f.cachedIdx {
			n = len(f.cachedList) - f.cachedIdx
		}
		out := f.cachedList[f.cachedIdx : f.cachedIdx+n]
		f.cachedIdx += n
		return out, nil
	}

	if f.dirEOF {
		return nil, nil
	}
	k.stats.cell().readdirFS.Add(1)
	ents, next, eof, err := d.sb.fs.ReadDir(f.ino.ID(), f.dirCookie, n)
	if err != nil {
		return nil, err
	}
	f.dirCookie = next
	// Feed the results into the dcache (§5.1: get the most possible use
	// from every directory read).
	for _, e := range ents {
		k.addReaddirChild(d, e)
	}
	if eof {
		f.dirEOF = true
		if k.cfg.DirCompleteness && !f.dirSeeked && k.lru.Epoch() == f.startEpoch {
			k.cacheMutBegin()
			d.setFlags(DComplete)
			k.cacheMutEnd()
			if tel := k.journal(); tel != nil {
				tel.Emit(telemetry.JDirComplete, d.ID(), 0, "readdir")
			}
		}
	}
	return ents, nil
}

// snapshotChildren renders the cached positive children of d as directory
// entries, reusing the dentry's cached listing when no child has changed —
// a repeated readdir is then a straight copy of a dirent buffer, like the
// kernel serving getdents from the child list (§5.1). Like getdents, no
// particular order is guaranteed.
func snapshotChildren(d *Dentry) []fsapi.DirEntry {
	d.mu.Lock()
	if !d.listValid {
		list := make([]fsapi.DirEntry, 0, len(d.children))
		for name, c := range d.children {
			fl := c.Flags()
			if fl&(DNegative|DAlias|DDead|DInLookup) != 0 {
				continue
			}
			var e fsapi.DirEntry
			e.Name = name
			if ino := c.Inode(); ino != nil {
				e.ID = ino.ID()
				e.Type = ino.Mode().Type()
			} else {
				e.ID = c.hintID
				e.Type = c.hintType
			}
			list = append(list, e)
		}
		d.completeList = list
		d.listValid = true
	}
	out := make([]fsapi.DirEntry, len(d.completeList))
	copy(out, d.completeList)
	d.mu.Unlock()
	return out
}

// addReaddirChild installs an inode-less ("unhydrated") dentry for a
// readdir result, so subsequent lookups avoid a directory search (§5.1).
// The slot is won under the parent's lock before anything is allocated
// (see installUnhydrated) — the old check-then-install race allocated a
// dentry, registered it with the LRU, and killed it on a lost race.
func (k *Kernel) addReaddirChild(parent *Dentry, e fsapi.DirEntry) {
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	k.installUnhydrated(parent, e)
}

// ReadDirAll reads the full listing from the current cursor.
func (f *File) ReadDirAll() ([]fsapi.DirEntry, error) {
	var all []fsapi.DirEntry
	for {
		batch, err := f.ReadDir(512)
		if err != nil {
			return all, err
		}
		if len(batch) == 0 {
			return all, nil
		}
		all = append(all, batch...)
	}
}
