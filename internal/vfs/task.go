package vfs

import (
	"sync"
	"sync/atomic"

	"dircache/internal/cred"
	"dircache/internal/telemetry"
)

// Task is a process as the VFS sees it: credentials, a root directory
// (chroot), a current working directory, and a mount namespace. All
// path-based operations hang off a Task. The hot-path state (cred, root,
// cwd, namespace) is read atomically — a lookup takes no task lock.
type Task struct {
	k *Kernel

	credp atomic.Pointer[cred.Cred]
	rootp atomic.Pointer[PathRef]
	cwdp  atomic.Pointer[PathRef]
	nsp   atomic.Pointer[Namespace]

	mu sync.Mutex // serializes state swaps (chdir/chroot/unshare/exit)

	// segScratch is the slow walk's segment-stack scratch buffer, reused
	// across walks to keep walkOnce allocation-free. segBusy guards it:
	// concurrent walks on one shared Task are legal (if unusual), so a
	// loser of the CAS falls back to a fresh stack allocation.
	segScratch []segment
	segBusy    atomic.Bool

	// shortcutP is the installed Hooks' walk-resume scratch: an opaque
	// immutable value swapped whole (the walk-resume analogue of
	// Dentry.fast). Concurrent walks on one task may race to replace it;
	// readers validate whatever snapshot they load, so a lost store only
	// costs a future resume opportunity. Boxed so Recycle can clear it
	// (atomic.Value cannot store nil or change concrete types).
	shortcutP atomic.Value // scratchBox

	// traceScratch is the per-task span scratch: a reusable WalkTrace so
	// sampled walks append stage events with zero walk-path allocations
	// (FinishWalk pushes a private copy). traceBusy guards it the same
	// way segBusy guards segScratch.
	traceScratch *telemetry.WalkTrace
	traceBusy    atomic.Bool

	// armedTrace is a server-installed span for the task's next walk:
	// the 9P dispatch arms it so the kernel walk annotates the wire span
	// in place, stitching client RPC, server dispatch, and walk stages
	// into one end-to-end trace. Consumed (cleared) by the first walk.
	armedTrace atomic.Pointer[telemetry.WalkTrace]
}

// scratchBox wraps the hooks' scratch value so every shortcutP store uses
// one concrete type, letting Recycle store an empty box to clear it.
type scratchBox struct{ v any }

// ShortcutScratch returns the hook-owned walk-resume scratch value, or
// nil if none has been recorded.
func (t *Task) ShortcutScratch() any {
	b, _ := t.shortcutP.Load().(scratchBox)
	return b.v
}

// SetShortcutScratch records the hook-owned walk-resume scratch. Values
// must be immutable and of one concrete type per hooks implementation.
func (t *Task) SetShortcutScratch(v any) { t.shortcutP.Store(scratchBox{v: v}) }

// ArmTrace installs (or with nil clears) a span for the task's next walk.
// The walk consumes it via takeArmedTrace; its owner finishes it. Used by
// the 9P server to stitch a wire span around the kernel walk it triggers.
func (t *Task) ArmTrace(tr *telemetry.WalkTrace) { t.armedTrace.Store(tr) }

// takeArmedTrace consumes the armed span, if any.
func (t *Task) takeArmedTrace() *telemetry.WalkTrace {
	if t.armedTrace.Load() == nil {
		return nil
	}
	return t.armedTrace.Swap(nil)
}

// acquireTrace returns the task's reusable span scratch (nil if an
// overlapping walk on the same task holds it — the sampler then
// allocates a throwaway trace instead).
func (t *Task) acquireTrace() (*telemetry.WalkTrace, bool) {
	if t.traceBusy.CompareAndSwap(false, true) {
		if t.traceScratch == nil {
			t.traceScratch = &telemetry.WalkTrace{}
		}
		return t.traceScratch, true
	}
	return nil, false
}

// releaseTrace returns the span scratch to the task.
func (t *Task) releaseTrace(held bool) {
	if held {
		t.traceBusy.Store(false)
	}
}

// acquireSegs returns a 1-length segment stack for a slow walk: the
// task's scratch buffer when free, a fresh allocation otherwise.
func (t *Task) acquireSegs() (segs []segment, scratch bool) {
	if t.segBusy.CompareAndSwap(false, true) {
		if cap(t.segScratch) == 0 {
			t.segScratch = make([]segment, 0, 8)
		}
		return t.segScratch[:1], true
	}
	return make([]segment, 1, 4), false
}

// releaseSegs returns the (possibly grown) scratch buffer to the task.
func (t *Task) releaseSegs(segs []segment, scratch bool) {
	if !scratch {
		return
	}
	full := segs[:cap(segs)]
	for i := range full {
		full[i] = segment{} // drop path-string references
	}
	t.segScratch = full[:0]
	t.segBusy.Store(false)
}

// NewTask creates a task in the initial namespace rooted at "/" with the
// given credentials.
func (k *Kernel) NewTask(c *cred.Cred) *Task {
	ns := k.initNS
	rootRef := PathRef{Mnt: ns.RootMount(), D: ns.RootMount().Root()}
	t := &Task{k: k}
	t.nsp.Store(ns)
	t.rootp.Store(&rootRef)
	t.cwdp.Store(&rootRef)
	t.credp.Store(c)
	rootRef.D.Ref()
	rootRef.D.Ref() // one pin for root, one for cwd
	return t
}

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.k }

// Cred returns the task's current credentials.
func (t *Task) Cred() *cred.Cred { return t.credp.Load() }

// SetCred commits new credentials (callers should obtain them via
// cred.Commit to get the paper's dedup behaviour).
func (t *Task) SetCred(c *cred.Cred) { t.credp.Store(c) }

// Namespace returns the task's mount namespace.
func (t *Task) Namespace() *Namespace { return t.nsp.Load() }

// Root returns the task's root directory reference.
func (t *Task) Root() PathRef { return *t.rootp.Load() }

// Cwd returns the task's working directory reference.
func (t *Task) Cwd() PathRef { return *t.cwdp.Load() }

// Fork clones the task: same credentials (shared — and thus a shared PCC,
// as when a shell forks children, §4.1), same root/cwd/namespace.
func (t *Task) Fork() *Task {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &Task{k: t.k}
	n.nsp.Store(t.nsp.Load())
	n.rootp.Store(t.rootp.Load())
	n.cwdp.Store(t.cwdp.Load())
	n.credp.Store(t.Cred())
	n.Root().D.Ref()
	n.Cwd().D.Ref()
	return n
}

// Recycle returns the task to its newborn state under new credentials:
// initial namespace, root and cwd at "/", and — critically for pooled
// multi-tenant reuse — the walk-resume shortcut scratch cleared, so a
// recycled task can never hash-resume from a previous tenant's prefix.
// The segment scratch buffer is kept (its contents are zeroed on every
// release). Must not race in-flight walks on the same task.
func (t *Task) Recycle(c *cred.Cred) {
	t.mu.Lock()
	defer t.mu.Unlock()
	oldRoot := *t.rootp.Load()
	oldCwd := *t.cwdp.Load()
	ns := t.k.initNS
	rootRef := PathRef{Mnt: ns.RootMount(), D: ns.RootMount().Root()}
	rootRef.D.Ref()
	rootRef.D.Ref() // one pin for root, one for cwd
	t.nsp.Store(ns)
	t.rootp.Store(&rootRef)
	t.cwdp.Store(&rootRef)
	t.credp.Store(c)
	t.shortcutP.Store(scratchBox{})
	t.armedTrace.Store(nil)
	oldRoot.D.Unref()
	oldCwd.D.Unref()
}

// Exit releases the task's directory pins.
func (t *Task) Exit() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Root().D.Unref()
	t.Cwd().D.Unref()
}

// setCwd swaps the working directory pin.
func (t *Task) setCwd(p PathRef) {
	p.D.Ref()
	t.mu.Lock()
	old := *t.cwdp.Load()
	t.cwdp.Store(&p)
	t.mu.Unlock()
	old.D.Unref()
}

// setRoot swaps the root pin (chroot).
func (t *Task) setRoot(p PathRef) {
	p.D.Ref()
	t.mu.Lock()
	old := *t.rootp.Load()
	t.rootp.Store(&p)
	t.mu.Unlock()
	old.D.Unref()
}

// UnshareNamespace gives the task a private copy of its mount namespace
// (CLONE_NEWNS) and returns it.
func (t *Task) UnshareNamespace() *Namespace {
	t.mu.Lock()
	defer t.mu.Unlock()
	ns := t.nsp.Load().clone(func() uint64 { return t.k.idGen.Add(1) })
	t.nsp.Store(ns)
	t.k.aliasEpoch.Add(1)
	// root/cwd keep pointing at the same dentries; remap their mounts to
	// the clones so future walks use the private table.
	root := remapRef(ns, *t.rootp.Load())
	t.rootp.Store(&root)
	cwd := remapRef(ns, *t.cwdp.Load())
	t.cwdp.Store(&cwd)
	return ns
}

// remapRef finds the cloned mount corresponding to ref.Mnt by matching
// (sb, root, mountpoint) identity in the new namespace.
func remapRef(ns *Namespace, ref PathRef) PathRef {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	if m := findEquivalent(ns, ref.Mnt); m != nil {
		return PathRef{Mnt: m, D: ref.D}
	}
	return PathRef{Mnt: ns.root, D: ref.D}
}

func findEquivalent(ns *Namespace, old *Mount) *Mount {
	if sameMountShape(ns.root, old) {
		return ns.root
	}
	for _, m := range ns.mounts {
		if sameMountShape(m, old) {
			return m
		}
	}
	return nil
}

func sameMountShape(a, b *Mount) bool {
	return a.sb == b.sb && a.root == b.root && a.mountpoint == b.mountpoint
}
