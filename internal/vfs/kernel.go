package vfs

import (
	"sync"
	"sync/atomic"

	"dircache/internal/fsapi"
	"dircache/internal/lsm"
	"dircache/internal/stripe"
	"dircache/internal/telemetry"
)

// Config selects the directory cache behaviour. The zero value is the
// stock Linux 3.14 baseline ("unmodified kernel"); feature flags turn on
// the paper's optimizations individually, which the ablation benchmarks
// exploit.
type Config struct {
	// SyncMode selects the hash table synchronization era (Figure 2).
	SyncMode SyncMode

	// HashBuckets sizes the (parent,name) dentry hash table (0 = 2^18,
	// Linux's default).
	HashBuckets int

	// CacheCapacity bounds the number of cached dentries; 0 = unlimited.
	// When the cache exceeds it, cold leaf dentries are evicted.
	CacheCapacity int

	// DisableNegatives turns off negative dentry caching entirely (not a
	// Linux behaviour; used by ablations).
	DisableNegatives bool

	// DirCompleteness enables §5.1: DIR_COMPLETE tracking, readdir served
	// from the cache, authoritative misses, and creation without an
	// existence lookup.
	DirCompleteness bool

	// AggressiveNegatives enables §5.2: keep negative dentries after
	// unlink/rename, and cache negatives on pseudo file systems.
	AggressiveNegatives bool

	// MaxSymlinks bounds symlink resolution depth (0 = 40, Linux's
	// MAXSYMLINKS).
	MaxSymlinks int

	// BulkAfter is the miss-streak threshold for readdir-driven bulk
	// population: once this many consecutive slow-path backend misses
	// land under one directory on a CheapReadDir file system, the next
	// miss issues a single ReadDir, installs every child, and marks the
	// directory DIR_COMPLETE instead of continuing one Lookup per name.
	// 0 = 3; negative disables bulk population. Requires
	// DirCompleteness (a bulk-set DComplete must be honoured).
	BulkAfter int

	// PhaseTrace enables per-walk phase timing (Figure 3). Costs a few
	// timestamps per lookup; leave off except when measuring.
	PhaseTrace bool
}

// Invalidation tells hooks why a subtree invalidation is happening.
type Invalidation int

const (
	// InvalRename: the dentry (and its subtree) is moving to a new path.
	InvalRename Invalidation = iota
	// InvalPerm: a directory's permission-relevant metadata changed.
	InvalPerm
	// InvalUnlink: the dentry is being unlinked/rmdired (subtree = alias
	// or deep-negative children).
	InvalUnlink
	// InvalMount: a mount or unmount is changing resolution under the
	// dentry.
	InvalMount
)

// String names the invalidation reason (journal and histogram labels).
func (i Invalidation) String() string {
	switch i {
	case InvalRename:
		return "rename"
	case InvalPerm:
		return "perm"
	case InvalUnlink:
		return "unlink"
	case InvalMount:
		return "mount"
	}
	return "unknown"
}

// Hooks is the seam through which internal/core installs the paper's §3/§4
// fastpath. All methods must be safe for concurrent use. A nil Hooks means
// the unmodified baseline.
type Hooks interface {
	// NewDentry is called once per allocated dentry; its return value is
	// stored as the dentry's Fast() state (the struct fast_dentry).
	NewDentry(d *Dentry) any

	// TryFast attempts a whole-path lookup from start. handled=false
	// falls back to the slow walk. When handled, res/err are the final
	// outcome (err may be ENOENT from a negative hit). tr is the walk's
	// sampled telemetry trace — nil on almost every call — to which the
	// hooks append their probe events.
	TryFast(t *Task, start PathRef, path string, fl WalkFlags, tr *telemetry.WalkTrace) (res PathRef, err error, handled bool)

	// BeginSlow returns an invalidation-epoch token before a slow walk.
	BeginSlow() uint64

	// ShortcutResume offers the slow walk a deeper start (DESIGN §5f):
	// when the hooks hold a still-valid resume point covering a strict
	// prefix of path for this task, they return its location and the
	// unresolved suffix, and the walk starts there instead of
	// re-stepping the cached prefix. The returned token is handed to
	// ShortcutCommit after the walk. ok=false walks from start. tr is
	// the walk's sampled span (nil almost always) for resume events.
	ShortcutResume(t *Task, start PathRef, path string, tr *telemetry.WalkTrace) (rs PathRef, rest string, token any, ok bool)

	// ShortcutCommit re-validates the resume point a walk just used.
	// False means the skipped prefix may have changed under the walk
	// (rename, shootdown) and the result must be discarded and the
	// lookup redone from its original start.
	ShortcutCommit(token any) bool

	// EndSlowLookup is called after a successful slow walk so the hooks
	// can populate the DLHT and PCC (unless the token went stale).
	// lexical is the dentry the path's canonical lexical form denotes:
	// usually res itself, but the symlink dentry when the final component
	// was a followed link, or the alias dentry when the final component
	// resolved under a symlink prefix (§4.2).
	EndSlowLookup(token uint64, t *Task, start PathRef, path string, lexical, res PathRef)

	// EndSlowNegative is called after a slow walk failed with ENOENT or
	// ENOTDIR so the hooks can install deep negative dentries (§5.2).
	EndSlowNegative(token uint64, t *Task, start PathRef, path string, f *WalkFailure)

	// AliasStep is called while the slow walk resolves components that
	// followed a symlink: aliasParent is the symlink (or previous alias)
	// dentry with its mount, name the component, real the resolved
	// location. It returns the alias dentry to chain from, or nil to stop
	// aliasing (§4.2).
	AliasStep(t *Task, aliasParent PathRef, name string, real PathRef) *Dentry

	// BeginMutation is called before a structural or permission change
	// rooted at d. The returned function is called when the change is
	// complete. Hooks bump their invalidation epoch on both edges and
	// shoot down cached state under d.
	BeginMutation(d *Dentry, why Invalidation) (end func())

	// OnEvict is called when a dentry leaves the cache (LRU eviction or
	// final unlink teardown).
	OnEvict(d *Dentry)

	// OnRecycle is called when a dentry changes identity in place: a
	// positive dentry going negative after unlink, or a negative dentry
	// being re-created. Hooks reset per-identity bookkeeping (admission
	// touch counts) that must not carry over.
	OnRecycle(d *Dentry)
}

// Stats are cumulative directory cache counters.
type Stats struct {
	Lookups       int64 // path walks requested
	FastHits      int64 // whole-path fastpath hits (set via AddFastHit)
	FastNegHits   int64 // fastpath hits on negative dentries
	SlowWalks     int64 // walks that took the component-at-a-time path
	Components    int64 // components resolved on the slow path
	CacheHits     int64 // slow-path hash table hits
	FSLookups     int64 // misses that called the low-level FS
	Hydrations    int64 // unhydrated dentries filled via GetNode
	NegativeHits  int64 // ENOENT answered by a negative dentry
	CompleteShort int64 // misses answered by DIR_COMPLETE (§5.1)
	ReaddirCached int64 // readdir served from the dcache (§5.1)
	ReaddirFS     int64 // readdir served by the low-level FS
	Evictions     int64
	SymlinkJumps  int64
	DotDotSteps   int64
	RetryWalks    int64 // optimistic walks that had to retry/fallback

	// Cold-miss storm elimination: how often concurrent misses shared one
	// backend call, how many of those actually blocked, and how many
	// directories were populated with a single ReadDir.
	MissCoalesced   int64 // misses that joined an in-flight lookup
	InLookupWaits   int64 // joins that actually blocked on resolution
	BulkPopulations int64 // directories bulk-populated via one ReadDir
}

// Delta returns the field-by-field difference s - prev: the events that
// happened between two snapshots. Because every field is monotonic, a
// delta of snapshots taken around a workload is exact up to the walks in
// flight at the two snapshot instants (see stripedStats on skew).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Lookups:       s.Lookups - prev.Lookups,
		FastHits:      s.FastHits - prev.FastHits,
		FastNegHits:   s.FastNegHits - prev.FastNegHits,
		SlowWalks:     s.SlowWalks - prev.SlowWalks,
		Components:    s.Components - prev.Components,
		CacheHits:     s.CacheHits - prev.CacheHits,
		FSLookups:     s.FSLookups - prev.FSLookups,
		Hydrations:    s.Hydrations - prev.Hydrations,
		NegativeHits:  s.NegativeHits - prev.NegativeHits,
		CompleteShort: s.CompleteShort - prev.CompleteShort,
		ReaddirCached: s.ReaddirCached - prev.ReaddirCached,
		ReaddirFS:     s.ReaddirFS - prev.ReaddirFS,
		Evictions:     s.Evictions - prev.Evictions,
		SymlinkJumps:  s.SymlinkJumps - prev.SymlinkJumps,
		DotDotSteps:   s.DotDotSteps - prev.DotDotSteps,
		RetryWalks:    s.RetryWalks - prev.RetryWalks,

		MissCoalesced:   s.MissCoalesced - prev.MissCoalesced,
		InLookupWaits:   s.InLookupWaits - prev.InLookupWaits,
		BulkPopulations: s.BulkPopulations - prev.BulkPopulations,
	}
}

// statsCell is one stripe's worth of counters; see stripedStats.
type statsCell struct {
	lookups, fastHits, fastNegHits, slowWalks, components, cacheHits,
	fsLookups, hydrations, negativeHits, completeShort,
	readdirCached, readdirFS, evictions, symlinkJumps, dotDotSteps,
	retryWalks, missCoalesced, inLookupWaits, bulkPopulations atomic.Int64
}

// stripedStats spreads the counters over cache-line-separated cells so
// concurrent walks on different cores don't serialize on shared counter
// lines (the same false/true-sharing effect §6.5 measures for locks).
// Writers bump one cell picked by a per-goroutine hash; snapshot() sums
// them. The sums are racy but each counter is monotonic, so a snapshot is
// a valid (if instantaneously slightly stale) cumulative total.
//
// Snapshot skew, precisely: snapshot() reads field-by-field and
// cell-by-cell with no cross-field atomicity, so a snapshot taken while
// walks are in flight can be internally inconsistent — e.g. Components
// already bumped for a walk whose Lookups increment lands in a cell read
// earlier, making ratios like Components/Lookups transiently off by a few
// counts. Each individual field is still a valid monotonic cumulative
// total, so deltas of the same field across two snapshots are meaningful
// (that is the contract Stats.Delta and dircache.CacheStats.Delta build
// on); only instantaneous cross-field identities ("SlowWalks + FastHits
// == Lookups") may be violated by the counts of in-flight walks.
type stripedStats struct {
	cells [stripe.Stripes]struct {
		statsCell
		_ [64]byte // keep neighbouring cells off one another's lines
	}
}

// cell returns the calling goroutine's stripe. Hot paths that bump several
// counters per walk call it once and reuse the pointer.
func (s *stripedStats) cell() *statsCell {
	return &s.cells[stripe.Index()].statsCell
}

func (s *stripedStats) snapshot() Stats {
	var out Stats
	for i := range s.cells {
		c := &s.cells[i].statsCell
		out.Lookups += c.lookups.Load()
		out.FastHits += c.fastHits.Load()
		out.FastNegHits += c.fastNegHits.Load()
		out.SlowWalks += c.slowWalks.Load()
		out.Components += c.components.Load()
		out.CacheHits += c.cacheHits.Load()
		out.FSLookups += c.fsLookups.Load()
		out.Hydrations += c.hydrations.Load()
		out.NegativeHits += c.negativeHits.Load()
		out.CompleteShort += c.completeShort.Load()
		out.ReaddirCached += c.readdirCached.Load()
		out.ReaddirFS += c.readdirFS.Load()
		out.Evictions += c.evictions.Load()
		out.SymlinkJumps += c.symlinkJumps.Load()
		out.DotDotSteps += c.dotDotSteps.Load()
		out.RetryWalks += c.retryWalks.Load()
		out.MissCoalesced += c.missCoalesced.Load()
		out.InLookupWaits += c.inLookupWaits.Load()
		out.BulkPopulations += c.bulkPopulations.Load()
	}
	return out
}

// Kernel owns the entire VFS state: the dentry cache, mount namespaces,
// LSM stack, and configuration.
type Kernel struct {
	cfg   Config
	table *hashTable
	lru   lruList
	lsm   lsm.Stack

	hooks Hooks

	// big is the 2.6.36-era global dcache lock (SyncBigLock only).
	big sync.Mutex

	// renameRW is the ref-walk fallback lock; renameSeq is the global
	// rename seqcount validated by optimistic walks.
	renameRW  sync.RWMutex
	renameSeq atomic.Uint64

	idGen  atomic.Uint64 // dentries, mounts, namespaces, supers
	stats  stripedStats
	initNS *Namespace

	// supers deduplicates superblocks so mounting the same FS instance
	// twice aliases one dentry tree (§4.3 mount aliases).
	supersMu sync.Mutex
	supers   map[fsapi.FileSystem]*Super

	// aliasEpoch counts events that create path aliases (bind mounts,
	// namespace clones). While zero, every dentry has exactly one
	// canonical path and hooks may take single-view shortcuts.
	aliasEpoch atomic.Uint64

	// phases receives per-walk PhaseTimes when Config.PhaseTrace is set.
	phases func(PhaseTimes)

	// tel is the attached telemetry subsystem, nil when observability is
	// off. The walk hot path pays exactly one atomic load and branch on
	// it; enabling/disabling at runtime attaches/detaches the pointer.
	tel atomic.Pointer[telemetry.Telemetry]

	// cacheMutSeq / cacheMutActive are the cache-structure stamp the
	// invariant auditor validates its passes against: every multi-step
	// structural change to the dentry cache (insert, teardown, rename
	// move, eviction, completeness transition) runs inside a
	// cacheMutBegin/cacheMutEnd bracket. A pass that reads an equal seq
	// with zero active mutators on both edges observed no concurrent
	// structural change. See introspect.go. (Audit-only fields sit at the
	// struct tail, off the walk path's cache lines.)
	cacheMutSeq    atomic.Uint64
	cacheMutActive atomic.Int64

	// chrootCount counts Chroot calls; while zero every task's root is the
	// initial namespace root, which lets the auditor re-verify PCC prefix
	// checks against the global root (see internal/audit).
	chrootCount atomic.Uint64

	// inLookupCount gauges how many in-lookup placeholders currently
	// exist. Introspection needs a dedicated counter because placeholders
	// are deliberately invisible to the LRU-based dentry iteration.
	inLookupCount atomic.Int64

	// testSkipInLookupClear is an injected bug for the invariant auditor's
	// tests: when set, missLookup resolves placeholders without clearing
	// DInLookup, so subsequently-published dentries leak the flag into the
	// DLHT — which the dlht_in_lookup audit must catch.
	testSkipInLookupClear bool
}

// TestSkipInLookupClear injects the leave-DInLookup-set bug (auditor
// tests only; see the field comment).
func (k *Kernel) TestSkipInLookupClear(on bool) { k.testSkipInLookupClear = on }

// InLookupCount reports how many in-lookup placeholders currently exist.
func (k *Kernel) InLookupCount() int64 { return k.inLookupCount.Load() }

// SetTelemetry attaches (or, with nil, detaches) the telemetry subsystem.
// Safe to call at any time, including while walks are in flight: an
// in-flight walk finishes against whichever instance it loaded at entry.
func (k *Kernel) SetTelemetry(t *telemetry.Telemetry) { k.tel.Store(t) }

// Telemetry returns the attached telemetry subsystem, or nil.
func (k *Kernel) Telemetry() *telemetry.Telemetry { return k.tel.Load() }

// AliasingEpoch reports how many alias-creating events (bind mounts,
// namespace clones) have occurred; zero means single-view paths.
func (k *Kernel) AliasingEpoch() uint64 { return k.aliasEpoch.Load() }

// NewKernel creates a kernel whose root file system is rootFS.
func NewKernel(cfg Config, rootFS fsapi.FileSystem) *Kernel {
	if cfg.MaxSymlinks == 0 {
		cfg.MaxSymlinks = 40
	}
	if cfg.BulkAfter == 0 {
		cfg.BulkAfter = 3
	}
	k := &Kernel{cfg: cfg, supers: make(map[fsapi.FileSystem]*Super)}
	k.table = newHashTable(cfg.SyncMode, cfg.HashBuckets)
	k.lru.tel = &k.tel

	sb := k.superFor(rootFS)
	rootMount := &Mount{id: k.idGen.Add(1), sb: sb, root: sb.root}
	ns := &Namespace{id: k.idGen.Add(1), mounts: make(map[mkey]*Mount), root: rootMount}
	k.initNS = ns
	return k
}

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// SetHooks installs the fastpath hooks. Must be called before any tasks
// run (the root dentry is retrofitted with hook state).
func (k *Kernel) SetHooks(h Hooks) {
	k.hooks = h
	if h != nil {
		// Retrofit dentries allocated before installation (the roots).
		root := k.initNS.root.sb.root
		if root.fast == nil {
			root.fast = h.NewDentry(root)
		}
	}
}

// Hooks returns the installed hooks (nil for baseline).
func (k *Kernel) Hooks() Hooks { return k.hooks }

// LSM returns the kernel's security module stack for registration.
func (k *Kernel) LSM() *lsm.Stack { return &k.lsm }

// InitialNamespace returns the boot mount namespace.
func (k *Kernel) InitialNamespace() *Namespace { return k.initNS }

// Stats returns a snapshot of the cumulative counters.
func (k *Kernel) Stats() Stats { return k.stats.snapshot() }

// AddFastHit lets hooks account a fastpath hit (negative = ENOENT served).
func (k *Kernel) AddFastHit(negative bool) {
	sc := k.stats.cell()
	sc.fastHits.Add(1)
	if negative {
		sc.fastNegHits.Add(1)
	}
}

// DentryCount returns the number of cached dentries.
func (k *Kernel) DentryCount() int { return k.lru.Len() }

// EvictionEpoch exposes the LRU eviction epoch (§5.1 bookkeeping).
func (k *Kernel) EvictionEpoch() uint64 { return k.lru.Epoch() }

// ChainStats reports hash bucket utilization (empty/1/2/3+ chains).
func (k *Kernel) ChainStats() (empty, one, two, more int) {
	return k.table.chainStats()
}

// superFor returns the superblock for fs, creating one on first mount.
// Re-mounting the same instance shares the dentry tree (mount aliasing).
func (k *Kernel) superFor(fs fsapi.FileSystem) *Super {
	k.supersMu.Lock()
	defer k.supersMu.Unlock()
	if sb, ok := k.supers[fs]; ok {
		return sb
	}
	sb := k.newSuper(fs)
	k.supers[fs] = sb
	return sb
}

// newSuper wraps a low-level FS in a superblock with a root dentry.
func (k *Kernel) newSuper(fs fsapi.FileSystem) *Super {
	sb := &Super{
		id:     k.idGen.Add(1),
		fs:     fs,
		caps:   fs.StatFS().Caps,
		icache: make(map[fsapi.NodeID]*Inode),
	}
	rootInfo := fs.Root()
	root := k.allocDentry(sb, nil, "", sb.inodeFor(rootInfo))
	sb.root = root
	return sb
}

// allocDentry creates a dentry (positive if ino != nil) and registers it
// with the LRU and hook state. It does NOT insert into the hash table or
// the parent's child map — callers do, under the proper locks.
func (k *Kernel) allocDentry(sb *Super, parent *Dentry, name string, ino *Inode) *Dentry {
	d := &Dentry{id: k.idGen.Add(1), sb: sb}
	d.pn.Store(&parentName{parent: parent, name: name})
	if ino != nil {
		d.inode.Store(ino)
	} else {
		d.setFlags(DNegative)
	}
	if k.hooks != nil {
		d.fast = k.hooks.NewDentry(d)
	}
	k.lru.add(d)
	return d
}

// maybeShrink enforces CacheCapacity by evicting cold leaf dentries. It
// evicts in batches (a sliver beyond the overage) so that a cache
// hovering at capacity amortizes the shrinker's candidate scan over many
// inserts instead of paying a full scan per insert.
func (k *Kernel) maybeShrink() {
	if k.cfg.CacheCapacity <= 0 {
		return
	}
	over := k.lru.Len() - k.cfg.CacheCapacity
	if over <= 0 {
		return
	}
	slack := k.cfg.CacheCapacity / 16
	if slack < 1 {
		slack = 1
	}
	k.Shrink(over + slack)
}

// Shrink evicts up to n cold, unpinned leaf dentries and returns how many
// were evicted.
func (k *Kernel) Shrink(n int) int {
	victims := k.lru.victims(n)
	if len(victims) == 0 {
		return 0
	}
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	tel := k.journal()
	for _, d := range victims {
		pn := d.pn.Load()
		d.setFlags(DDead)
		if pn.parent != nil {
			k.table.remove(pn.parent.id, pn.name, d)
			pn.parent.detachChild(pn.name)
			wasComplete := pn.parent.Flags()&DComplete != 0
			pn.parent.clearFlags(DComplete)
			if wasComplete && tel != nil {
				tel.Emit(telemetry.JDirIncomplete, pn.parent.ID(), 0, "evict-child")
			}
		}
		k.stats.cell().evictions.Add(1)
		if tel != nil {
			tel.Emit(telemetry.JEvict, d.ID(), 0, "shrink")
		}
		if k.hooks != nil {
			k.hooks.OnEvict(d)
		}
	}
	return len(victims)
}

// DropCaches evicts every evictable dentry (repeatedly, so emptied parents
// become leaves and fall too) and returns the number evicted. Pinned
// dentries (roots, cwds, open files) survive. This is the experiment
// harness's "echo 2 > /proc/sys/vm/drop_caches".
func (k *Kernel) DropCaches() int {
	total := 0
	for {
		n := k.Shrink(1 << 20)
		total += n
		if n == 0 {
			return total
		}
	}
}

// beginMutation invokes the hooks' BeginMutation if installed.
func (k *Kernel) beginMutation(d *Dentry, why Invalidation) func() {
	if k.hooks == nil {
		return func() {}
	}
	return k.hooks.BeginMutation(d, why)
}

// renameWriteLock enters a structural-change critical section: the rename
// seqcount goes odd, optimistic walks retry, and ref-walks block.
func (k *Kernel) renameWriteLock() {
	k.renameRW.Lock()
	k.renameSeq.Add(1)
}

func (k *Kernel) renameWriteUnlock() {
	k.renameSeq.Add(1)
	k.renameRW.Unlock()
}

// readSeqBegin/readSeqValid implement the optimistic reader side.
func (k *Kernel) readSeqBegin() (uint64, bool) {
	s := k.renameSeq.Load()
	return s, s&1 == 0
}

func (k *Kernel) readSeqValid(s uint64) bool {
	return k.renameSeq.Load() == s
}
