package vfs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dircache/internal/fsapi"
	"dircache/internal/lsm"
	"dircache/internal/slab"
	"dircache/internal/stripe"
	"dircache/internal/telemetry"
)

// Config selects the directory cache behaviour. The zero value is the
// stock Linux 3.14 baseline ("unmodified kernel"); feature flags turn on
// the paper's optimizations individually, which the ablation benchmarks
// exploit.
type Config struct {
	// SyncMode selects the hash table synchronization era (Figure 2).
	SyncMode SyncMode

	// HashBuckets sizes the (parent,name) dentry hash table (0 = 2^18,
	// Linux's default).
	HashBuckets int

	// CacheCapacity bounds the number of cached dentries; 0 = unlimited.
	// When the cache exceeds it, cold leaf dentries are evicted.
	CacheCapacity int

	// DisableNegatives turns off negative dentry caching entirely (not a
	// Linux behaviour; used by ablations).
	DisableNegatives bool

	// DirCompleteness enables §5.1: DIR_COMPLETE tracking, readdir served
	// from the cache, authoritative misses, and creation without an
	// existence lookup.
	DirCompleteness bool

	// AggressiveNegatives enables §5.2: keep negative dentries after
	// unlink/rename, and cache negatives on pseudo file systems.
	AggressiveNegatives bool

	// MaxSymlinks bounds symlink resolution depth (0 = 40, Linux's
	// MAXSYMLINKS).
	MaxSymlinks int

	// BulkAfter is the miss-streak threshold for readdir-driven bulk
	// population: once this many consecutive slow-path backend misses
	// land under one directory on a CheapReadDir file system, the next
	// miss issues a single ReadDir, installs every child, and marks the
	// directory DIR_COMPLETE instead of continuing one Lookup per name.
	// 0 = 3; negative disables bulk population. Requires
	// DirCompleteness (a bulk-set DComplete must be honoured).
	BulkAfter int

	// PhaseTrace enables per-walk phase timing (Figure 3). Costs a few
	// timestamps per lookup; leave off except when measuring.
	PhaseTrace bool

	// HeapAlloc puts the dentry/chain-node slab arenas in
	// pointer-heap-baseline mode: one slot per chunk (each entry its own
	// GC-visible allocation) and no free-list reuse, approximating the
	// pre-slab layout where every dentry was an individually GC-tracked
	// object. Only the memscale experiment sets this; it exists so the
	// baseline and the slab build run the identical code path.
	HeapAlloc bool
}

// Invalidation tells hooks why a subtree invalidation is happening.
type Invalidation int

const (
	// InvalRename: the dentry (and its subtree) is moving to a new path.
	InvalRename Invalidation = iota
	// InvalPerm: a directory's permission-relevant metadata changed.
	InvalPerm
	// InvalUnlink: the dentry is being unlinked/rmdired (subtree = alias
	// or deep-negative children).
	InvalUnlink
	// InvalMount: a mount or unmount is changing resolution under the
	// dentry.
	InvalMount
	// InvalRemote: a peer cache instance (another shard of the namespace)
	// reported a mutation under the dentry; the local view is discarded
	// wholesale rather than replayed.
	InvalRemote
)

// String names the invalidation reason (journal and histogram labels).
func (i Invalidation) String() string {
	switch i {
	case InvalRename:
		return "rename"
	case InvalPerm:
		return "perm"
	case InvalUnlink:
		return "unlink"
	case InvalMount:
		return "mount"
	case InvalRemote:
		return "remote"
	}
	return "unknown"
}

// Hooks is the seam through which internal/core installs the paper's §3/§4
// fastpath. All methods must be safe for concurrent use. A nil Hooks means
// the unmodified baseline.
type Hooks interface {
	// NewDentry is called once per allocated dentry; its return value is
	// stored as the dentry's Fast() state (the struct fast_dentry).
	NewDentry(d *Dentry) any

	// TryFast attempts a whole-path lookup from start. handled=false
	// falls back to the slow walk. When handled, res/err are the final
	// outcome (err may be ENOENT from a negative hit). tr is the walk's
	// sampled telemetry trace — nil on almost every call — to which the
	// hooks append their probe events.
	TryFast(t *Task, start PathRef, path string, fl WalkFlags, tr *telemetry.WalkTrace) (res PathRef, err error, handled bool)

	// BeginSlow returns an invalidation-epoch token before a slow walk.
	BeginSlow() uint64

	// ShortcutResume offers the slow walk a deeper start (DESIGN §5f):
	// when the hooks hold a still-valid resume point covering a strict
	// prefix of path for this task, they return its location and the
	// unresolved suffix, and the walk starts there instead of
	// re-stepping the cached prefix. The returned token is handed to
	// ShortcutCommit after the walk. ok=false walks from start. tr is
	// the walk's sampled span (nil almost always) for resume events.
	ShortcutResume(t *Task, start PathRef, path string, tr *telemetry.WalkTrace) (rs PathRef, rest string, token any, ok bool)

	// ShortcutCommit re-validates the resume point a walk just used.
	// False means the skipped prefix may have changed under the walk
	// (rename, shootdown) and the result must be discarded and the
	// lookup redone from its original start.
	ShortcutCommit(token any) bool

	// EndSlowLookup is called after a successful slow walk so the hooks
	// can populate the DLHT and PCC (unless the token went stale).
	// lexical is the dentry the path's canonical lexical form denotes:
	// usually res itself, but the symlink dentry when the final component
	// was a followed link, or the alias dentry when the final component
	// resolved under a symlink prefix (§4.2).
	EndSlowLookup(token uint64, t *Task, start PathRef, path string, lexical, res PathRef)

	// EndSlowNegative is called after a slow walk failed with ENOENT or
	// ENOTDIR so the hooks can install deep negative dentries (§5.2).
	EndSlowNegative(token uint64, t *Task, start PathRef, path string, f *WalkFailure)

	// AliasStep is called while the slow walk resolves components that
	// followed a symlink: aliasParent is the symlink (or previous alias)
	// dentry with its mount, name the component, real the resolved
	// location. It returns the alias dentry to chain from, or nil to stop
	// aliasing (§4.2).
	AliasStep(t *Task, aliasParent PathRef, name string, real PathRef) *Dentry

	// BeginMutation is called before a structural or permission change
	// rooted at d. The returned function is called when the change is
	// complete. Hooks bump their invalidation epoch on both edges and
	// shoot down cached state under d.
	BeginMutation(d *Dentry, why Invalidation) (end func())

	// OnEvict is called when a dentry leaves the cache (LRU eviction or
	// final unlink teardown).
	OnEvict(d *Dentry)

	// OnRecycle is called when a dentry changes identity in place: a
	// positive dentry going negative after unlink, or a negative dentry
	// being re-created. Hooks reset per-identity bookkeeping (admission
	// touch counts) that must not carry over.
	OnRecycle(d *Dentry)

	// OnReclaim is called by the lazy-teardown sweeper just before a dead
	// dentry's slab slot is retired: the hooks' last chance to drop state
	// still keyed to it (residual DLHT entries, the fast_dentry slot
	// itself). OnEvict has already run, at kill time.
	OnReclaim(d *Dentry)

	// OnReap is called on the kernel's reclamation cadence (mutation
	// tails, ReclaimAll) so hook layers can return their own arenas'
	// grace-elapsed slots to the free-lists. Without it the fast-dentry
	// and DLHT-node arenas would only ever retire into limbo and grow
	// without bound under churn.
	OnReap()
}

// Stats are cumulative directory cache counters.
type Stats struct {
	Lookups       int64 // path walks requested
	FastHits      int64 // whole-path fastpath hits (set via AddFastHit)
	FastNegHits   int64 // fastpath hits on negative dentries
	SlowWalks     int64 // walks that took the component-at-a-time path
	Components    int64 // components resolved on the slow path
	CacheHits     int64 // slow-path hash table hits
	FSLookups     int64 // misses that called the low-level FS
	Hydrations    int64 // unhydrated dentries filled via GetNode
	NegativeHits  int64 // ENOENT answered by a negative dentry
	CompleteShort int64 // misses answered by DIR_COMPLETE (§5.1)
	ReaddirCached int64 // readdir served from the dcache (§5.1)
	ReaddirFS     int64 // readdir served by the low-level FS
	Evictions     int64
	SymlinkJumps  int64
	DotDotSteps   int64
	RetryWalks    int64 // optimistic walks that had to retry/fallback

	// Cold-miss storm elimination: how often concurrent misses shared one
	// backend call, how many of those actually blocked, and how many
	// directories were populated with a single ReadDir.
	MissCoalesced   int64 // misses that joined an in-flight lookup
	InLookupWaits   int64 // joins that actually blocked on resolution
	BulkPopulations int64 // directories bulk-populated via one ReadDir
}

// Delta returns the field-by-field difference s - prev: the events that
// happened between two snapshots. Because every field is monotonic, a
// delta of snapshots taken around a workload is exact up to the walks in
// flight at the two snapshot instants (see stripedStats on skew).
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Lookups:       s.Lookups - prev.Lookups,
		FastHits:      s.FastHits - prev.FastHits,
		FastNegHits:   s.FastNegHits - prev.FastNegHits,
		SlowWalks:     s.SlowWalks - prev.SlowWalks,
		Components:    s.Components - prev.Components,
		CacheHits:     s.CacheHits - prev.CacheHits,
		FSLookups:     s.FSLookups - prev.FSLookups,
		Hydrations:    s.Hydrations - prev.Hydrations,
		NegativeHits:  s.NegativeHits - prev.NegativeHits,
		CompleteShort: s.CompleteShort - prev.CompleteShort,
		ReaddirCached: s.ReaddirCached - prev.ReaddirCached,
		ReaddirFS:     s.ReaddirFS - prev.ReaddirFS,
		Evictions:     s.Evictions - prev.Evictions,
		SymlinkJumps:  s.SymlinkJumps - prev.SymlinkJumps,
		DotDotSteps:   s.DotDotSteps - prev.DotDotSteps,
		RetryWalks:    s.RetryWalks - prev.RetryWalks,

		MissCoalesced:   s.MissCoalesced - prev.MissCoalesced,
		InLookupWaits:   s.InLookupWaits - prev.InLookupWaits,
		BulkPopulations: s.BulkPopulations - prev.BulkPopulations,
	}
}

// statsCell is one stripe's worth of counters; see stripedStats.
type statsCell struct {
	lookups, fastHits, fastNegHits, slowWalks, components, cacheHits,
	fsLookups, hydrations, negativeHits, completeShort,
	readdirCached, readdirFS, evictions, symlinkJumps, dotDotSteps,
	retryWalks, missCoalesced, inLookupWaits, bulkPopulations atomic.Int64
}

// stripedStats spreads the counters over cache-line-separated cells so
// concurrent walks on different cores don't serialize on shared counter
// lines (the same false/true-sharing effect §6.5 measures for locks).
// Writers bump one cell picked by a per-goroutine hash; snapshot() sums
// them. The sums are racy but each counter is monotonic, so a snapshot is
// a valid (if instantaneously slightly stale) cumulative total.
//
// Snapshot skew, precisely: snapshot() reads field-by-field and
// cell-by-cell with no cross-field atomicity, so a snapshot taken while
// walks are in flight can be internally inconsistent — e.g. Components
// already bumped for a walk whose Lookups increment lands in a cell read
// earlier, making ratios like Components/Lookups transiently off by a few
// counts. Each individual field is still a valid monotonic cumulative
// total, so deltas of the same field across two snapshots are meaningful
// (that is the contract Stats.Delta and dircache.CacheStats.Delta build
// on); only instantaneous cross-field identities ("SlowWalks + FastHits
// == Lookups") may be violated by the counts of in-flight walks.
type stripedStats struct {
	cells [stripe.Stripes]struct {
		statsCell
		_ [64]byte // keep neighbouring cells off one another's lines
	}
}

// cell returns the calling goroutine's stripe. Hot paths that bump several
// counters per walk call it once and reuse the pointer.
func (s *stripedStats) cell() *statsCell {
	return &s.cells[stripe.Index()].statsCell
}

func (s *stripedStats) snapshot() Stats {
	var out Stats
	for i := range s.cells {
		c := &s.cells[i].statsCell
		out.Lookups += c.lookups.Load()
		out.FastHits += c.fastHits.Load()
		out.FastNegHits += c.fastNegHits.Load()
		out.SlowWalks += c.slowWalks.Load()
		out.Components += c.components.Load()
		out.CacheHits += c.cacheHits.Load()
		out.FSLookups += c.fsLookups.Load()
		out.Hydrations += c.hydrations.Load()
		out.NegativeHits += c.negativeHits.Load()
		out.CompleteShort += c.completeShort.Load()
		out.ReaddirCached += c.readdirCached.Load()
		out.ReaddirFS += c.readdirFS.Load()
		out.Evictions += c.evictions.Load()
		out.SymlinkJumps += c.symlinkJumps.Load()
		out.DotDotSteps += c.dotDotSteps.Load()
		out.RetryWalks += c.retryWalks.Load()
		out.MissCoalesced += c.missCoalesced.Load()
		out.InLookupWaits += c.inLookupWaits.Load()
		out.BulkPopulations += c.bulkPopulations.Load()
	}
	return out
}

// Kernel owns the entire VFS state: the dentry cache, mount namespaces,
// LSM stack, and configuration.
type Kernel struct {
	cfg   Config
	table *hashTable
	lru   lruList
	lsm   lsm.Stack

	// gate is the epoch clock shared by every slab arena of this kernel
	// (dentries and hash-chain nodes here; fast-dentry and DLHT-node
	// arenas in internal/core). Every exported operation that may touch
	// arena-backed objects runs inside one Enter/Exit section.
	gate *slab.Gate

	// dentries is the dentry slab arena: the cache's bulk storage.
	dentries *slab.Arena[Dentry]

	// limbo is the lazy-teardown work queue: dentries killed by
	// unlink/rmdir/rename/eviction whose hash-table removal and slot
	// retirement are deferred off the mutation's critical path. The
	// sweeper (reapSome / ReclaimAll) drains it in batches.
	limboMu   sync.Mutex
	limbo     []dentryLimbo
	limboHead int
	limboLen  atomic.Int64
	swept     atomic.Uint64 // cumulative dentries processed by the sweeper
	reapTick  atomic.Uint64 // mutation-tail counter pacing the reclaim pass

	hooks Hooks

	// big is the 2.6.36-era global dcache lock (SyncBigLock only).
	big sync.Mutex

	// renameRW is the ref-walk fallback lock; renameSeq is the global
	// rename seqcount validated by optimistic walks.
	renameRW  sync.RWMutex
	renameSeq atomic.Uint64

	idGen  atomic.Uint64 // dentries, mounts, namespaces, supers
	stats  stripedStats
	initNS *Namespace

	// supers deduplicates superblocks so mounting the same FS instance
	// twice aliases one dentry tree (§4.3 mount aliases).
	supersMu sync.Mutex
	supers   map[fsapi.FileSystem]*Super

	// aliasEpoch counts events that create path aliases (bind mounts,
	// namespace clones). While zero, every dentry has exactly one
	// canonical path and hooks may take single-view shortcuts.
	aliasEpoch atomic.Uint64

	// phases receives per-walk PhaseTimes when Config.PhaseTrace is set.
	phases func(PhaseTimes)

	// tel is the attached telemetry subsystem, nil when observability is
	// off. The walk hot path pays exactly one atomic load and branch on
	// it; enabling/disabling at runtime attaches/detaches the pointer.
	tel atomic.Pointer[telemetry.Telemetry]

	// cacheMutSeq / cacheMutActive are the cache-structure stamp the
	// invariant auditor validates its passes against: every multi-step
	// structural change to the dentry cache (insert, teardown, rename
	// move, eviction, completeness transition) runs inside a
	// cacheMutBegin/cacheMutEnd bracket. A pass that reads an equal seq
	// with zero active mutators on both edges observed no concurrent
	// structural change. See introspect.go. (Audit-only fields sit at the
	// struct tail, off the walk path's cache lines.)
	cacheMutSeq    atomic.Uint64
	cacheMutActive atomic.Int64

	// chrootCount counts Chroot calls; while zero every task's root is the
	// initial namespace root, which lets the auditor re-verify PCC prefix
	// checks against the global root (see internal/audit).
	chrootCount atomic.Uint64

	// inLookupCount gauges how many in-lookup placeholders currently
	// exist. Introspection needs a dedicated counter because placeholders
	// are deliberately invisible to the LRU-based dentry iteration.
	inLookupCount atomic.Int64

	// testSkipInLookupClear is an injected bug for the invariant auditor's
	// tests: when set, missLookup resolves placeholders without clearing
	// DInLookup, so subsequently-published dentries leak the flag into the
	// DLHT — which the dlht_in_lookup audit must catch.
	testSkipInLookupClear bool
}

// TestSkipInLookupClear injects the leave-DInLookup-set bug (auditor
// tests only; see the field comment).
func (k *Kernel) TestSkipInLookupClear(on bool) { k.testSkipInLookupClear = on }

// InLookupCount reports how many in-lookup placeholders currently exist.
func (k *Kernel) InLookupCount() int64 { return k.inLookupCount.Load() }

// SetTelemetry attaches (or, with nil, detaches) the telemetry subsystem.
// Safe to call at any time, including while walks are in flight: an
// in-flight walk finishes against whichever instance it loaded at entry.
func (k *Kernel) SetTelemetry(t *telemetry.Telemetry) { k.tel.Store(t) }

// Telemetry returns the attached telemetry subsystem, or nil.
func (k *Kernel) Telemetry() *telemetry.Telemetry { return k.tel.Load() }

// AliasingEpoch reports how many alias-creating events (bind mounts,
// namespace clones) have occurred; zero means single-view paths.
func (k *Kernel) AliasingEpoch() uint64 { return k.aliasEpoch.Load() }

// NewKernel creates a kernel whose root file system is rootFS.
func NewKernel(cfg Config, rootFS fsapi.FileSystem) *Kernel {
	if cfg.MaxSymlinks == 0 {
		cfg.MaxSymlinks = 40
	}
	if cfg.BulkAfter == 0 {
		cfg.BulkAfter = 3
	}
	k := &Kernel{cfg: cfg, supers: make(map[fsapi.FileSystem]*Super)}
	k.gate = slab.NewGate()
	opts := k.SlabOptions()
	k.dentries = slab.New[Dentry](k.gate, opts)
	k.table = newHashTable(cfg.SyncMode, cfg.HashBuckets, slab.New[tnode](k.gate, opts), k.dentries)
	k.lru.arena = k.dentries
	k.lru.tel = &k.tel

	sb := k.superFor(rootFS)
	rootMount := &Mount{id: k.idGen.Add(1), sb: sb, root: sb.root}
	ns := &Namespace{id: k.idGen.Add(1), mounts: make(map[mkey]*Mount), root: rootMount}
	k.initNS = ns
	return k
}

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// SetHooks installs the fastpath hooks. Must be called before any tasks
// run (the root dentry is retrofitted with hook state).
func (k *Kernel) SetHooks(h Hooks) {
	k.hooks = h
	if h != nil {
		// Retrofit dentries allocated before installation (the roots).
		root := k.initNS.root.sb.root
		if root.fast == nil {
			root.fast = h.NewDentry(root)
		}
	}
}

// Hooks returns the installed hooks (nil for baseline).
func (k *Kernel) Hooks() Hooks { return k.hooks }

// LSM returns the kernel's security module stack for registration.
func (k *Kernel) LSM() *lsm.Stack { return &k.lsm }

// InitialNamespace returns the boot mount namespace.
func (k *Kernel) InitialNamespace() *Namespace { return k.initNS }

// Stats returns a snapshot of the cumulative counters.
func (k *Kernel) Stats() Stats { return k.stats.snapshot() }

// AddFastHit lets hooks account a fastpath hit (negative = ENOENT served).
func (k *Kernel) AddFastHit(negative bool) {
	sc := k.stats.cell()
	sc.fastHits.Add(1)
	if negative {
		sc.fastNegHits.Add(1)
	}
}

// DentryCount returns the number of cached dentries.
func (k *Kernel) DentryCount() int { return k.lru.Len() }

// EvictionEpoch exposes the LRU eviction epoch (§5.1 bookkeeping).
func (k *Kernel) EvictionEpoch() uint64 { return k.lru.Epoch() }

// ChainStats reports hash bucket utilization (empty/1/2/3+ chains).
func (k *Kernel) ChainStats() (empty, one, two, more int) {
	return k.table.chainStats()
}

// superFor returns the superblock for fs, creating one on first mount.
// Re-mounting the same instance shares the dentry tree (mount aliasing).
func (k *Kernel) superFor(fs fsapi.FileSystem) *Super {
	k.supersMu.Lock()
	defer k.supersMu.Unlock()
	if sb, ok := k.supers[fs]; ok {
		return sb
	}
	sb := k.newSuper(fs)
	k.supers[fs] = sb
	return sb
}

// newSuper wraps a low-level FS in a superblock with a root dentry.
func (k *Kernel) newSuper(fs fsapi.FileSystem) *Super {
	sb := &Super{
		id:     k.idGen.Add(1),
		k:      k,
		fs:     fs,
		caps:   fs.StatFS().Caps,
		icache: make(map[fsapi.NodeID]*Inode),
	}
	rootInfo := fs.Root()
	root := k.allocDentry(sb, nil, "", sb.inodeFor(rootInfo))
	sb.root = root
	return sb
}

// newDentry carves a dentry out of the slab arena and resets it for its
// new identity. The ID is fresh (never reused) even when the slot is
// recycled — identity-keyed state (PCC entries, journal refs) therefore
// never aliases across tenants; only the slab generation distinguishes
// slot tenants. Does not register anywhere: callers publish.
func (k *Kernel) newDentry(sb *Super, parent *Dentry, name string) *Dentry {
	ref, d := k.dentries.Alloc()
	d.reset(k.idGen.Add(1), ref, sb)
	d.pn.Store(&parentName{parent: parent, name: name})
	return d
}

// allocDentry creates a dentry (positive if ino != nil) and registers it
// with the LRU and hook state. It does NOT insert into the hash table or
// the parent's child map — callers do, under the proper locks.
func (k *Kernel) allocDentry(sb *Super, parent *Dentry, name string, ino *Inode) *Dentry {
	d := k.newDentry(sb, parent, name)
	if ino != nil {
		d.inode.Store(ino)
	} else {
		d.setFlags(DNegative)
	}
	if k.hooks != nil {
		d.fast = k.hooks.NewDentry(d)
	}
	k.lru.add(d)
	return d
}

// dentryLimbo is one deferred-teardown record: everything the sweeper
// needs to finish tearing a killed dentry down without touching its
// (possibly already re-created) parent. The key identity is captured at
// kill time because the dentry's pn may be gone by the time the sweeper
// runs.
type dentryLimbo struct {
	ref      slab.Ref
	parentID uint64
	name     string
	inTable  bool
}

// retireLater queues a killed dentry for the sweeper. The dentry must
// already be dead, detached from its parent's child map, and out of the
// LRU; what remains — hash-table chain removal, hook-state reclamation,
// and the slab-slot retire — is batched off the mutation path.
func (k *Kernel) retireLater(d *Dentry, parentID uint64, name string, inTable bool) {
	k.limboMu.Lock()
	k.limbo = append(k.limbo, dentryLimbo{ref: d.self, parentID: parentID, name: name, inTable: inTable})
	k.limboMu.Unlock()
	k.limboLen.Add(1)
}

// reapBatch is how many limbo records one sweep pass processes, and the
// queue depth past which mutation ops trigger a pass on their way out.
const reapBatch = 256

// reapStride is how many mutation tails pass between reclaim passes.
// Sweeping stays threshold-driven (limbo depth), but the free-list
// replenishment pass — four arenas' worth of epoch nudges and lock
// acquisitions — is paced so a burst of unlinks pays it 1/32nd of the
// time with proportionally larger batches, not on every operation.
const reapStride = 32

// reapSome opportunistically drains the teardown queue and returns
// reclaimed slots to the arenas' free-lists. Called outside epoch
// sections (at the tail of mutation operations) so the epoch clock can
// advance past the sections that might still hold raw pointers.
func (k *Kernel) reapSome() {
	if k.limboLen.Load() >= reapBatch {
		k.sweepLimbo(2 * reapBatch)
	}
	if k.reapTick.Add(1)%reapStride != 0 {
		return
	}
	k.dentries.Reclaim(reapStride * reapBatch)
	k.table.nodes.Reclaim(reapStride * reapBatch)
	if k.hooks != nil {
		k.hooks.OnReap()
	}
}

// sweepLimbo processes up to max deferred-teardown records: hash-table
// chain unlink, hook reclamation (residual DLHT entry, fast-dentry
// slot), then the dentry slot's retirement into the arena's
// grace-period limbo. Records whose dentry has been re-pinned
// (impossible for dead dentries today, but cheap to tolerate) or whose
// slot already retired are skipped.
func (k *Kernel) sweepLimbo(max int) int {
	n := 0
	for n < max {
		k.limboMu.Lock()
		if k.limboHead >= len(k.limbo) {
			k.limbo = k.limbo[:0]
			k.limboHead = 0
			k.limboMu.Unlock()
			break
		}
		rec := k.limbo[k.limboHead]
		k.limboHead++
		if k.limboHead > 4096 && k.limboHead == len(k.limbo) {
			k.limbo = k.limbo[:0]
			k.limboHead = 0
		}
		k.limboMu.Unlock()
		n++
		d := k.dentries.Resolve(rec.ref)
		if d == nil {
			continue // slot already retired (double-kill race)
		}
		if rec.inTable {
			k.table.remove(rec.parentID, rec.name, d)
		}
		if k.hooks != nil {
			k.hooks.OnReclaim(d)
		}
		k.dentries.Retire(rec.ref)
	}
	if n > 0 {
		k.limboLen.Add(int64(-n))
		k.swept.Add(uint64(n))
	}
	return n
}

// ReclaimAll synchronously drains the entire teardown queue and recycles
// every grace-elapsed slot — the "sync(2)" of the lazy reclaim path,
// used by tests, the auditor's pre-pass, and DropCaches. Safe (but
// pointless) to call inside an epoch section: slots retired under a
// pinned epoch simply wait for the next call.
func (k *Kernel) ReclaimAll() {
	for k.sweepLimbo(1<<20) > 0 {
	}
	// Three advances guarantee any slot retired before the call clears
	// its two-epoch grace period, provided no reader section is pinned.
	for i := 0; i < 3; i++ {
		k.gate.TryAdvance()
		k.dentries.Reclaim(1 << 20)
		k.table.nodes.Reclaim(1 << 20)
		if k.hooks != nil {
			k.hooks.OnReap()
		}
	}
}

// Gate exposes the kernel's epoch gate so internal/core can drive its
// own arenas (fast-dentry, DLHT nodes) off the same clock, and so
// out-of-band readers (the auditor) can pin sections.
func (k *Kernel) Gate() *slab.Gate { return k.gate }

// SlabOptions returns the arena options the kernel's own arenas use, so
// hook layers keep their side tables in the same allocation mode — slab
// chunks normally, one-GC-object-per-slot under the HeapAlloc baseline.
func (k *Kernel) SlabOptions() slab.Options {
	if k.cfg.HeapAlloc {
		return slab.Options{ChunkLog2: 0, ForceChunkLog2: true, NoReuse: true}
	}
	return slab.Options{}
}

// DentryFromRef resolves a generation-tagged dentry reference, returning
// nil when the slot has been retired or recycled since the ref was
// minted. This is the only safe way to hold a dentry across operations
// without pinning it.
func (k *Kernel) DentryFromRef(r slab.Ref) *Dentry {
	return k.dentries.Resolve(r)
}

// MemStats reports slab-arena occupancy for telemetry: the dentry and
// hash-chain arenas' live/free/limbo slot counts plus the kernel
// teardown queue depth and cumulative sweep count.
func (k *Kernel) MemStats() (dentries, chainNodes slab.Stats, limbo int64, swept uint64) {
	return k.dentries.Stats(), k.table.nodes.Stats(), k.limboLen.Load(), k.swept.Load()
}

// CheckSlabLiveness scans the LRU shards and hash-table chains for
// references that do not resolve to an in-use slab slot of matching
// generation — the invariant the auditor's slab_liveness check enforces:
// lazy teardown may leave *dead* entries behind (they fail Resolve and
// are skipped), but no structure may hold a reference that resolves to a
// *different* tenant, and no live entry may sit in a free or retired
// slot. Returns how many references were examined plus at most limit
// violation descriptions. Callers should drain the teardown queue first
// (ReclaimAll) so legitimately-dead leftovers don't mask real bugs; the
// check itself pins an epoch section.
func (k *Kernel) CheckSlabLiveness(limit int) (int, []string) {
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	checked := 0
	var out []string
	// LRU: every entry must resolve (eager lru.remove at kill time means
	// no dead leftovers are legitimate) and resolve to a live dentry.
	for i := range k.lru.shards {
		sh := &k.lru.shards[i]
		sh.mu.Lock()
		for h, g := range sh.entries {
			checked++
			d := k.dentries.Resolve(slab.Ref{H: h, G: g})
			switch {
			case d == nil:
				out = append(out, fmt.Sprintf("lru: handle %d gen %d does not resolve (slot retired or recycled)", h, g))
			case d.IsDead():
				out = append(out, fmt.Sprintf("lru: dentry #%d (handle %d) is dead but still charged to the LRU", d.ID(), h))
			}
			if len(out) >= limit {
				sh.mu.Unlock()
				return checked, out
			}
		}
		sh.mu.Unlock()
	}
	// Hash chains: a node's dref may legitimately fail to resolve (lazy
	// teardown: dentry slot retired before the chain node is swept), but
	// when it does resolve, generations must match exactly — Resolve
	// already enforces that — and a resolving live dentry must agree
	// that it is this (parentID, name): a mismatch means the slot was
	// recycled while the stale node still matched by generation, i.e. an
	// ABA breach.
	k.table.forEachRef(func(parentID uint64, name string, dref slab.Ref) bool {
		checked++
		d := k.dentries.Resolve(dref)
		if d == nil {
			return true // dead leftover awaiting sweep: legitimate
		}
		if d.self != dref {
			out = append(out, fmt.Sprintf("table: chain node (%d,%q) resolves to dentry #%d with mismatched self ref", parentID, name, d.ID()))
		} else if !d.IsDead() {
			pn := d.pn.Load()
			pid := uint64(0)
			if pn != nil && pn.parent != nil {
				pid = pn.parent.ID()
			}
			if pn == nil || pn.parent == nil || pid != parentID || pn.name != name {
				out = append(out, fmt.Sprintf("table: chain node (%d,%q) resolves to live dentry #%d which is (%d,%q)", parentID, name, d.ID(), pid, pn.name))
			}
		}
		return len(out) < limit
	})
	return checked, out
}

// InjectPrematureFree retires d's slab slot in place — the LRU, the hash
// chains, and its parent's child map still reference it — and forces
// reclamation so the slot lands on the free-list while live structures
// can still reach it. Test-only seam: it fabricates the premature-free
// bug class (a use-after-free, in C terms) that the auditor's
// slab_liveness check exists to catch. Never call it outside a test.
func (k *Kernel) InjectPrematureFree(d *Dentry) {
	k.dentries.Retire(d.self)
	k.ReclaimAll()
}

// maybeShrink enforces CacheCapacity by evicting cold leaf dentries. It
// evicts in batches (a sliver beyond the overage) so that a cache
// hovering at capacity amortizes the shrinker's candidate scan over many
// inserts instead of paying a full scan per insert.
func (k *Kernel) maybeShrink() {
	if k.cfg.CacheCapacity <= 0 {
		return
	}
	over := k.lru.Len() - k.cfg.CacheCapacity
	if over <= 0 {
		return
	}
	slack := k.cfg.CacheCapacity / 16
	if slack < 1 {
		slack = 1
	}
	k.Shrink(over + slack)
}

// Shrink evicts up to n cold, unpinned leaf dentries and returns how many
// were evicted. The visible eviction (dead flag, parent detach, hook
// notification) is immediate; hash-chain removal and slot recycling are
// deferred to the sweeper.
func (k *Kernel) Shrink(n int) int {
	e := k.gate.Enter()
	victims := k.lru.victims(n)
	if len(victims) == 0 {
		k.gate.Exit(e)
		return 0
	}
	k.cacheMutBegin()
	tel := k.journal()
	for _, d := range victims {
		pn := d.pn.Load()
		d.setFlags(DDead)
		if pn.parent != nil {
			pn.parent.detachChild(pn.name)
			wasComplete := pn.parent.Flags()&DComplete != 0
			pn.parent.clearFlags(DComplete)
			if wasComplete && tel != nil {
				tel.Emit(telemetry.JDirIncomplete, pn.parent.ID(), 0, "evict-child")
			}
		}
		k.stats.cell().evictions.Add(1)
		if tel != nil {
			tel.Emit(telemetry.JEvict, d.ID(), 0, "shrink")
		}
		if k.hooks != nil {
			k.hooks.OnEvict(d)
		}
		var pid uint64
		if pn.parent != nil {
			pid = pn.parent.id
		}
		k.retireLater(d, pid, pn.name, pn.parent != nil)
	}
	k.cacheMutEnd()
	k.gate.Exit(e)
	k.reapSome()
	return len(victims)
}

// DropCaches evicts every evictable dentry (repeatedly, so emptied parents
// become leaves and fall too) and returns the number evicted. Pinned
// dentries (roots, cwds, open files) survive. This is the experiment
// harness's "echo 2 > /proc/sys/vm/drop_caches".
func (k *Kernel) DropCaches() int {
	total := 0
	for {
		n := k.Shrink(1 << 20)
		total += n
		if n == 0 {
			k.ReclaimAll()
			return total
		}
	}
}

// beginMutation invokes the hooks' BeginMutation if installed.
func (k *Kernel) beginMutation(d *Dentry, why Invalidation) func() {
	if k.hooks == nil {
		return func() {}
	}
	return k.hooks.BeginMutation(d, why)
}

// renameWriteLock enters a structural-change critical section: the rename
// seqcount goes odd, optimistic walks retry, and ref-walks block.
func (k *Kernel) renameWriteLock() {
	k.renameRW.Lock()
	k.renameSeq.Add(1)
}

func (k *Kernel) renameWriteUnlock() {
	k.renameSeq.Add(1)
	k.renameRW.Unlock()
}

// readSeqBegin/readSeqValid implement the optimistic reader side.
func (k *Kernel) readSeqBegin() (uint64, bool) {
	s := k.renameSeq.Load()
	return s, s&1 == 0
}

func (k *Kernel) readSeqValid(s uint64) bool {
	return k.renameSeq.Load() == s
}
