package vfs

import (
	"errors"
	"fmt"
	"time"

	"dircache/internal/fsapi"
	"dircache/internal/telemetry"
)

// MaxPath bounds path lengths, matching Linux's PATH_MAX.
const MaxPath = 4096

// WalkFlags modify path resolution.
type WalkFlags uint32

const (
	// WalkNoFollow does not follow a symlink in the final component
	// (lstat, O_NOFOLLOW).
	WalkNoFollow WalkFlags = 1 << iota
	// WalkDirectory requires the final component to be a directory.
	WalkDirectory
	// WalkNoFast skips the fastpath hook (used internally when the
	// caller needs authoritative slow-walk side effects).
	WalkNoFast
)

// WalkFailure is the structured ENOENT/ENOTDIR result of a slow walk. It
// tells the hooks where the resolution stopped so deep negative dentries
// (§5.2) can be installed.
type WalkFailure struct {
	Errno fsapi.Errno
	// Anchor is the deepest cached dentry on the path: the negative
	// dentry for the failing component, the directory whose completeness
	// answered the miss, or — for ENOTDIR — the non-directory dentry the
	// path tried to descend through.
	Anchor PathRef
	// Missing lists the path components below Anchor that are not
	// cached, in order.
	Missing []string
}

// Error implements error.
func (f *WalkFailure) Error() string { return f.Errno.Error() }

// Unwrap lets errors.Is match the underlying Errno.
func (f *WalkFailure) Unwrap() error { return f.Errno }

// errSeqRetry aborts an optimistic walk that observed torn state.
var errSeqRetry = errors.New("vfs: optimistic walk retry")

// PhaseTimes decomposes one lookup into the cost centers charted in
// Figure 3 of the paper.
type PhaseTimes struct {
	Init       time.Duration // start-ref resolution, setup
	ScanHash   time.Duration // component scanning and key hashing
	HashLookup time.Duration // hash table probes
	PermCheck  time.Duration // per-directory permission checks
	Finalize   time.Duration // final dentry validation
}

// Add accumulates other into p.
func (p *PhaseTimes) Add(o PhaseTimes) {
	p.Init += o.Init
	p.ScanHash += o.ScanHash
	p.HashLookup += o.HashLookup
	p.PermCheck += o.PermCheck
	p.Finalize += o.Finalize
}

// Total sums all phases.
func (p *PhaseTimes) Total() time.Duration {
	return p.Init + p.ScanHash + p.HashLookup + p.PermCheck + p.Finalize
}

// SetPhaseSink installs a callback receiving each walk's PhaseTimes
// (only honored when Config.PhaseTrace is set). Not synchronized with
// in-flight walks; install before measuring.
func (k *Kernel) SetPhaseSink(fn func(PhaseTimes)) { k.phases = fn }

// PhaseTraceOn reports whether phase tracing is active (config flag set
// and a sink installed) — hooks use it to instrument the fastpath.
func (k *Kernel) PhaseTraceOn() bool { return k.cfg.PhaseTrace && k.phases != nil }

// RecordPhases delivers one lookup's phase decomposition to the sink.
func (k *Kernel) RecordPhases(p PhaseTimes) {
	if k.phases != nil {
		k.phases(p)
	}
}

// nextComponent splits the leading path component from s, skipping any
// leading slashes. comp == "" means s held nothing but slashes.
func nextComponent(s string) (comp, rest string) {
	i := 0
	for i < len(s) && s[i] == '/' {
		i++
	}
	j := i
	for j < len(s) && s[j] != '/' {
		j++
	}
	return s[i:j], s[j:]
}

// hasMoreComponents reports whether s contains any non-slash bytes.
func hasMoreComponents(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '/' {
			return true
		}
	}
	return false
}

// startFor picks the walk's starting location for path.
func (t *Task) startFor(path string) PathRef {
	if len(path) > 0 && path[0] == '/' {
		return t.Root()
	}
	return t.Cwd()
}

// Walk resolves path to a PathRef using the fastpath when installed,
// falling back to the component-at-a-time slow walk. Relative paths start
// at the task's working directory.
func (t *Task) Walk(path string, fl WalkFlags) (PathRef, error) {
	return t.WalkFrom(PathRef{}, path, fl)
}

// WalkFrom resolves path starting at `at` for relative paths (the *at()
// family); a zero `at` means the working directory. Absolute paths always
// start at the task root.
func (t *Task) WalkFrom(at PathRef, path string, fl WalkFlags) (PathRef, error) {
	k := t.k
	// Epoch section for the whole walk: every dentry, hash-chain node,
	// and fastpath slot observed on the way is protected from slab
	// recycling until the walk exits (slab reclamation grace period).
	ep := k.gate.Enter()
	defer k.gate.Exit(ep)
	k.stats.cell().lookups.Add(1)
	if path == "" {
		return PathRef{}, fsapi.ENOENT
	}
	if len(path) >= MaxPath {
		return PathRef{}, fsapi.ENAMETOOLONG
	}
	var start PathRef
	if path[0] == '/' {
		start = t.Root()
	} else if at.D != nil {
		start = at
	} else {
		start = t.Cwd()
	}

	// Telemetry: when detached this is the entire cost — one atomic load
	// and one branch. When attached but disabled, On() folds it to nil so
	// the rest of the walk takes the same nil-pointer paths.
	tel := k.tel.Load()
	var walkStart time.Time
	var tr *telemetry.WalkTrace
	var trHeld bool
	if !tel.On() {
		tel = nil
	} else {
		walkStart = time.Now()
		if armed := t.takeArmedTrace(); armed != nil {
			// A wire span armed by the 9P server: annotate it in place so
			// the walk's stage events stitch into the end-to-end trace.
			// Its owner finishes it; FinishWalk only appends a summary.
			tr = armed
		} else if tel.Sampled() {
			var scratch *telemetry.WalkTrace
			scratch, trHeld = t.acquireTrace()
			tr = tel.StartWalk(scratch, path)
		}
	}

	if k.hooks != nil && fl&WalkNoFast == 0 {
		if res, err, handled := k.hooks.TryFast(t, start, path, fl, tr); handled {
			if tel != nil {
				d := time.Since(walkStart)
				var trID uint64
				if tr != nil {
					trID = tr.ID
				}
				tel.RecordEx(telemetry.HistFastpath, d, trID)
				tel.RecordEx(telemetry.HistWalk, d, trID)
				tel.FinishWalk(tr, true, err, d)
				t.releaseTrace(trHeld)
			}
			return res, err
		}
	}

	tr.Event(telemetry.EvSlowWalk, "")
	k.stats.cell().slowWalks.Add(1)
	var token uint64
	if k.hooks != nil {
		token = k.hooks.BeginSlow()
	}
	// Shortcut resume (DESIGN §5f): let the hooks move the walk start to
	// the deepest cached ancestor they can prove usable, so the slow walk
	// only steps the unresolved suffix. The epoch token is taken first:
	// population legality must cover the resumed walk's whole window.
	slowStart, slowPath := start, path
	var scTok any
	if k.hooks != nil && fl&WalkNoFast == 0 {
		if rs, rest, tok, ok := k.hooks.ShortcutResume(t, start, path, tr); ok {
			slowStart, slowPath, scTok = rs, rest, tok
		}
	}
	res, lexical, err := k.walkSlow(t, slowStart, slowPath, fl, tr)
	if scTok != nil && (err == errSeqRetry || !k.hooks.ShortcutCommit(scTok)) {
		// The resume point went stale while the walk ran (rename or
		// shootdown of the skipped prefix): the result may reflect the
		// ancestor's old location. Redo authoritatively from the start.
		tr.SetAnomaly(telemetry.AnomShortcutTorn)
		tr.Event(telemetry.EvSeqRetry, "shortcut torn, authoritative redo")
		slowStart, slowPath = start, path
		res, lexical, err = k.walkSlow(t, slowStart, slowPath, fl, tr)
	}
	if k.hooks != nil {
		if err == nil {
			k.hooks.EndSlowLookup(token, t, slowStart, slowPath, lexical, res)
		} else {
			var f *WalkFailure
			if errors.As(err, &f) {
				k.hooks.EndSlowNegative(token, t, slowStart, slowPath, f)
			}
		}
	}
	if tel != nil {
		d := time.Since(walkStart)
		var trID uint64
		if tr != nil {
			trID = tr.ID
		}
		tel.RecordEx(telemetry.HistSlowpath, d, trID)
		tel.RecordEx(telemetry.HistWalk, d, trID)
		tel.FinishWalk(tr, false, err, d)
		t.releaseTrace(trHeld)
	}
	return res, err
}

// walkSlow dispatches on the synchronization era.
func (k *Kernel) walkSlow(t *Task, start PathRef, path string, fl WalkFlags, tr *telemetry.WalkTrace) (PathRef, PathRef, error) {
	sc := k.stats.cell()
	switch k.cfg.SyncMode {
	case SyncBigLock:
		k.big.Lock()
		defer k.big.Unlock()
		return k.walkOnce(t, start, path, fl, tr)
	case SyncBucketLock:
		k.renameRW.RLock()
		defer k.renameRW.RUnlock()
		return k.walkOnce(t, start, path, fl, tr)
	default: // SyncRCU
		for try := 0; try < 4; try++ {
			seq, even := k.readSeqBegin()
			if !even {
				sc.retryWalks.Add(1)
				tr.Event(telemetry.EvSeqRetry, "writer active")
				continue
			}
			res, lex, err := k.walkOnce(t, start, path, fl, tr)
			if err == errSeqRetry {
				sc.retryWalks.Add(1)
				tr.Event(telemetry.EvSeqRetry, "torn read")
				continue
			}
			if !k.readSeqValid(seq) {
				sc.retryWalks.Add(1)
				tr.Event(telemetry.EvSeqRetry, "seq changed")
				continue
			}
			return res, lex, err
		}
		// ref-walk fallback: block out structural changes and redo.
		sc.retryWalks.Add(1)
		tr.Event(telemetry.EvRefWalk, "")
		tr.SetAnomaly(telemetry.AnomRefWalk)
		k.renameRW.RLock()
		defer k.renameRW.RUnlock()
		return k.walkOnce(t, start, path, fl, tr)
	}
}

// segment is one pending piece of path: the original request or a symlink
// target. aliasable marks components of the original user path (only those
// get symlink-alias dentries, §4.2).
type segment struct {
	rest      string
	aliasable bool
}

// walkOnce performs one component-at-a-time traversal — the analogue of
// Linux's link_path_walk + walk_component, including the per-directory
// permission checks that constitute the prefix check.
func (k *Kernel) walkOnce(t *Task, start PathRef, path string, fl WalkFlags, tr *telemetry.WalkTrace) (PathRef, PathRef, error) {
	sc := k.stats.cell()
	var ph PhaseTimes
	tracing := k.cfg.PhaseTrace && k.phases != nil
	var t0 time.Time
	if tracing {
		t0 = time.Now()
	}

	c := t.Cred()
	ns := t.Namespace()
	cur := start
	root := t.Root()

	// Segment stack for symlink continuations, reusing the task's scratch
	// buffer so an ordinary slow walk allocates nothing here.
	segs, scratch := t.acquireSegs()
	defer func() { t.releaseSegs(segs, scratch) }()
	segs[0] = segment{rest: path, aliasable: true}
	symDepth := 0

	var aliasCur PathRef // current tail of the alias chain being built
	var lexical PathRef  // what the path's lexical form denotes (§4.2)

	if tracing {
		ph.Init += time.Since(t0)
	}

	mustDir := fl&WalkDirectory != 0

	for len(segs) > 0 {
		seg := &segs[len(segs)-1]
		var comp string
		if tracing {
			t0 = time.Now()
		}
		comp, seg.rest = nextComponent(seg.rest)
		if tracing {
			ph.ScanHash += time.Since(t0)
		}
		if comp == "" {
			// Segment exhausted (was empty or all slashes).
			segs = segs[:len(segs)-1]
			continue
		}
		if len(comp) > 255 {
			return PathRef{}, PathRef{}, fsapi.ENAMETOOLONG
		}
		trailingSlash := len(seg.rest) > 0 && !hasMoreComponents(seg.rest)
		final := !hasMoreComponents(seg.rest) && len(segs) == 1
		if final && trailingSlash {
			// "path/" requires the result to be a directory.
			mustDir = true
		}

		// The current location must be a searchable directory.
		curIno := cur.D.Inode()
		if curIno == nil || cur.D.IsDead() {
			return PathRef{}, PathRef{}, errSeqRetry
		}
		if !curIno.Mode().IsDir() {
			return PathRef{}, PathRef{}, &WalkFailure{
				Errno:   fsapi.ENOTDIR,
				Anchor:  cur,
				Missing: remainingComponents(comp, segs),
			}
		}
		if tracing {
			t0 = time.Now()
		}
		err := k.mayLookup(c, cur.Mnt, curIno)
		if tracing {
			ph.PermCheck += time.Since(t0)
		}
		if err != nil {
			return PathRef{}, PathRef{}, err
		}

		if comp == "." {
			continue
		}
		if comp == ".." {
			sc.dotDotSteps.Add(1)
			tr.Event(telemetry.EvDotDot, "")
			aliasCur = PathRef{} // stop aliasing across parent references
			cur = k.followDotDot(t, ns, root, cur)
			continue
		}

		sc.components.Add(1)
		tr.Event(telemetry.EvComponent, comp)

		// Hash table probe.
		if tracing {
			t0 = time.Now()
		}
		d := k.table.lookup(cur.D.id, comp)
		if tracing {
			ph.HashLookup += time.Since(t0)
		}

		if d != nil && d.sb.caps.Revalidate {
			// Close-to-open consistency: the cached entry must be
			// re-verified at the server (§4.3). Positive entries refresh
			// via GetNode; negatives are not trusted at all.
			if d.IsNegative() || k.revalidate(d) != nil {
				k.killDentryKeepComplete(d)
				d = nil
			}
		}
		if d != nil {
			if d.IsDead() {
				return PathRef{}, PathRef{}, errSeqRetry
			}
			sc.cacheHits.Add(1)
			tr.Event(telemetry.EvHashHit, comp)
			k.lru.touch(d)
			if d.IsNegative() {
				sc.negativeHits.Add(1)
				tr.Event(telemetry.EvNegative, comp)
				errno := fsapi.ENOENT
				if d.Flags()&DNotDir != 0 {
					errno = fsapi.ENOTDIR
				}
				return PathRef{}, PathRef{}, &WalkFailure{
					Errno:   errno,
					Anchor:  PathRef{Mnt: cur.Mnt, D: d},
					Missing: remainingComponents("", segs),
				}
			}
			if d.Flags()&DUnhydrated != 0 {
				tr.Event(telemetry.EvHydrate, comp)
				if err := k.hydrate(d); err != nil {
					return PathRef{}, PathRef{}, err
				}
			}
		} else {
			// Miss: authoritative shortcut if the directory is complete.
			// The flag is only trusted after a locked re-read of the
			// child map: bulk population installs children (child map,
			// then hash table) before setting DComplete, so a probe that
			// missed the table can still observe the flag — the re-read
			// then finds the freshly installed child, and missLookup
			// below resolves it from the map without a backend call.
			if k.cfg.DirCompleteness && cur.D.Flags()&DComplete != 0 &&
				cur.D.child(comp) == nil {
				sc.completeShort.Add(1)
				tr.Event(telemetry.EvCompleteShort, comp)
				return PathRef{}, PathRef{}, &WalkFailure{
					Errno:   fsapi.ENOENT,
					Anchor:  cur,
					Missing: remainingComponents(comp, segs),
				}
			}
			var werr error
			if tr != nil {
				fsStart := time.Now()
				d, werr = k.missLookupTraced(cur, comp, tr)
				tr.EventDur(telemetry.EvFSLookup, comp, time.Since(fsStart))
			} else {
				d, werr = k.missLookup(cur, comp)
			}
			if werr != nil {
				if errno, ok := werr.(fsapi.Errno); ok && errno == fsapi.ENOENT {
					anchor := cur
					missing := remainingComponents(comp, segs)
					// If a negative dentry was installed, it anchors the
					// failure itself.
					if nd := cur.D.child(comp); nd != nil && nd.IsNegative() {
						anchor = PathRef{Mnt: cur.Mnt, D: nd}
						missing = remainingComponents("", segs)
					}
					return PathRef{}, PathRef{}, &WalkFailure{Errno: fsapi.ENOENT, Anchor: anchor, Missing: missing}
				}
				return PathRef{}, PathRef{}, werr
			}
		}

		next := PathRef{Mnt: cur.Mnt, D: d}

		// Cross mount points (possibly stacked).
		for next.D.Flags()&DMounted != 0 {
			m := ns.mountAt(next.Mnt, next.D)
			if m == nil {
				break
			}
			next = PathRef{Mnt: m, D: m.root}
		}

		// Symbolic links.
		if next.D.IsSymlink() {
			follow := !final || fl&WalkNoFollow == 0 || trailingSlash || mustDir
			if final && fl&WalkNoFollow != 0 && !trailingSlash && !mustDir {
				follow = false
			}
			if follow {
				symDepth++
				if symDepth > k.cfg.MaxSymlinks {
					return PathRef{}, PathRef{}, fsapi.ELOOP
				}
				sc.symlinkJumps.Add(1)
				tr.Event(telemetry.EvSymlink, comp)
				target, err := k.readLinkBody(next.D)
				if err != nil {
					return PathRef{}, PathRef{}, err
				}
				if k.hooks != nil && seg.aliasable {
					aliasCur = PathRef{Mnt: cur.Mnt, D: next.D}
					if final && lexical.D == nil {
						// The requested path denotes the link itself;
						// the result is its target (§4.2 link-f).
						lexical = aliasCur
					}
				}
				// Push the target as a new, non-aliasable segment.
				segs = append(segs, segment{rest: target})
				if target[0] == '/' {
					cur = root
				}
				continue
			}
		}

		// Alias chaining for components after a symlink (§4.2).
		if aliasCur.D != nil && k.hooks != nil && seg.aliasable && !next.D.IsNegative() {
			alias := k.hooks.AliasStep(t, aliasCur, comp, next)
			if alias == nil {
				aliasCur = PathRef{}
			} else {
				aliasCur = PathRef{Mnt: aliasCur.Mnt, D: alias}
				if final {
					// The requested path denotes the alias chain's
					// tail (§4.2 link-d).
					lexical = aliasCur
				}
			}
		}

		cur = next
	}

	if tracing {
		t0 = time.Now()
	}
	// Final validation.
	ino := cur.D.Inode()
	if ino == nil {
		if cur.D.IsNegative() {
			return PathRef{}, PathRef{}, &WalkFailure{Errno: fsapi.ENOENT, Anchor: cur}
		}
		if cur.D.Flags()&DUnhydrated != 0 {
			if err := k.hydrate(cur.D); err != nil {
				return PathRef{}, PathRef{}, err
			}
			ino = cur.D.Inode()
		}
	}
	if mustDir && (ino == nil || !ino.Mode().IsDir()) {
		return PathRef{}, PathRef{}, fsapi.ENOTDIR
	}
	if tracing {
		ph.Finalize += time.Since(t0)
		k.phases(ph)
	}
	if lexical.D == nil {
		lexical = cur
	}
	return cur, lexical, nil
}

// remainingComponents collects first (if non-empty) plus every component
// left in the segment stack's aliasable portion — the components below the
// failure anchor.
func remainingComponents(first string, segs []segment) []string {
	var out []string
	if first != "" {
		out = append(out, first)
	}
	// Only the original (bottom, aliasable) segment names real path
	// components the user asked for; symlink-target segments are internal.
	rest := segs[0].rest
	for {
		var c string
		c, rest = nextComponent(rest)
		if c == "" {
			break
		}
		out = append(out, c)
	}
	return out
}

// followDotDot implements ".." with mount climbing; staying put at the
// task's root (chroot barrier).
func (k *Kernel) followDotDot(t *Task, ns *Namespace, root PathRef, cur PathRef) PathRef {
	for {
		if cur.D == root.D && cur.Mnt == root.Mnt {
			return cur // at the task root: ".." is a no-op
		}
		if cur.D != cur.Mnt.root {
			p := cur.D.Parent()
			if p == nil {
				return cur
			}
			return PathRef{Mnt: cur.Mnt, D: p}
		}
		// At a mount root: climb to the mountpoint in the parent mount.
		if cur.Mnt.parent == nil {
			return cur // global root
		}
		cur = PathRef{Mnt: cur.Mnt.parent, D: cur.Mnt.mountpoint}
	}
}

// hydrate attaches the inode to an unhydrated dentry via GetNode — much
// cheaper than a directory search (§5.1).
func (k *Kernel) hydrate(d *Dentry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.Flags()&DUnhydrated == 0 {
		return nil // raced with another hydration
	}
	info, err := d.sb.fs.GetNode(d.hintID)
	if err != nil {
		// The node vanished under us (concurrent FS-level change): treat
		// the dentry as stale.
		return fsapi.ESTALE
	}
	k.stats.cell().hydrations.Add(1)
	d.inode.Store(d.sb.inodeFor(info))
	d.clearFlags(DUnhydrated)
	return nil
}

// missLookup consults the low-level FS for (cur, comp) through an
// in-lookup placeholder dentry (the d_alloc_parallel singleflight): the
// first missing walk installs the placeholder under the parent's child
// map *before* calling the backend, and concurrent walks missing on the
// same name block on its resolution instead of issuing duplicate Lookup
// round trips. The placeholder resolves in place to a positive or
// negative dentry, or is removed on backend error so a later walk can
// retry.
func (k *Kernel) missLookup(cur PathRef, comp string) (*Dentry, error) {
	return k.missLookupTraced(cur, comp, nil)
}

// missLookupTraced is missLookup with an optional trace: the coalesce
// wait, bulk population, and backend consultation under this miss become
// stage events on tr (nil for untraced walks).
func (k *Kernel) missLookupTraced(cur PathRef, comp string, tr *telemetry.WalkTrace) (*Dentry, error) {
	parent := cur.D
	pIno := parent.Inode()
	if pIno == nil {
		return nil, errSeqRetry
	}

	parent.mu.Lock()
	if d, ok := parent.children[comp]; ok && !d.IsDead() {
		if d.Flags()&DInLookup != 0 {
			il := d.inLookup
			parent.mu.Unlock()
			return k.joinInLookup(d, il, comp, tr)
		}
		parent.mu.Unlock()
		if d.IsNegative() {
			return nil, fsapi.ENOENT
		}
		if d.Flags()&DUnhydrated != 0 {
			if err := k.hydrate(d); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	// Won the slot. The placeholder is allocated only now — the losing
	// side of the old install race allocated a full dentry, registered it
	// with the LRU, then marked it dead and removed it, pure churn. While
	// DInLookup is set the dentry is visible only through the child map:
	// not in the hash table, not in the LRU, invisible to readdir
	// snapshots and audits.
	k.cacheMutBegin()
	d := k.newDentry(parent.sb, parent, comp)
	d.setFlags(DInLookup)
	il := &inLookupState{done: make(chan struct{})}
	d.inLookup = il
	if k.hooks != nil {
		d.fast = k.hooks.NewDentry(d)
	}
	if parent.children == nil {
		parent.children = make(map[string]*Dentry, 4)
	}
	parent.children[comp] = d
	parent.listValid = false
	parent.mu.Unlock()
	parent.nkids.Add(1)
	k.cacheMutEnd()
	k.inLookupCount.Add(1)

	return k.resolveMiss(parent, pIno, comp, d, il, tr)
}

// joinInLookup coalesces a concurrent miss onto the in-flight lookup that
// owns the placeholder: wait for the winner's resolution and adopt its
// outcome — positive, ENOENT, or the backend's error — so K racing walks
// cost exactly one backend round trip.
func (k *Kernel) joinInLookup(d *Dentry, il *inLookupState, comp string, tr *telemetry.WalkTrace) (*Dentry, error) {
	sc := k.stats.cell()
	sc.missCoalesced.Add(1)
	tel := k.journal()
	select {
	case <-il.done:
		// Resolved between our child-map read and here: adopt for free.
		if tel != nil {
			tel.Emit(telemetry.JCoalesce, d.ID(), 0, "")
		}
		tr.Event(telemetry.EvCoalesceWait, comp+" (resolved)")
	default:
		sc.inLookupWaits.Add(1)
		if tel != nil {
			tel.Emit(telemetry.JCoalesce, d.ID(), 0, "wait")
		}
		waitStart := time.Now()
		<-il.done
		wait := time.Since(waitStart)
		if tel != nil {
			tel.Record(telemetry.HistMissWait, wait)
		}
		tr.EventDur(telemetry.EvCoalesceWait, comp, wait)
		if tr != nil && tel != nil && wait > tel.SlowThreshold("") {
			tr.SetAnomaly(telemetry.AnomCoalesceWait)
		}
	}
	if il.err != nil {
		return nil, il.err
	}
	if d.IsDead() {
		return nil, errSeqRetry
	}
	if d.Flags()&DUnhydrated != 0 {
		if err := k.hydrate(d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// resolveMiss is the winner's half of the in-lookup protocol: one backend
// consultation — a Lookup, or, once the miss streak under this directory
// crosses Config.BulkAfter on a CheapReadDir file system, one ReadDir
// that populates the whole directory — then an in-place resolution of the
// placeholder that wakes every coalesced waiter.
func (k *Kernel) resolveMiss(parent *Dentry, pIno *Inode, comp string, d *Dentry, il *inLookupState, tr *telemetry.WalkTrace) (*Dentry, error) {
	if streak := parent.missStreak.Add(1); k.bulkEligible(parent, streak) {
		if res, err, handled := k.bulkPopulate(parent, pIno, comp, d, il, tr); handled {
			return res, err
		}
	}

	k.stats.cell().fsLookups.Add(1)
	tel := k.tel.Load()
	var fsStart time.Time
	if tel.On() {
		fsStart = time.Now()
	}
	info, err := parent.sb.fs.Lookup(pIno.ID(), comp)
	if !fsStart.IsZero() {
		tel.Record(telemetry.HistFSLookup, time.Since(fsStart))
	}
	switch {
	case err == nil:
		return k.resolvePositive(parent, comp, d, il, parent.sb.inodeFor(info), fsapi.DirEntry{})
	case errors.Is(err, fsapi.ENOENT):
		k.resolveNegative(parent, comp, d, il)
		return nil, fsapi.ENOENT
	default:
		k.resolveRemove(parent, comp, d, il, err)
		return nil, err
	}
}

// resolvePositive publishes the placeholder as a live positive dentry:
// inode (or, for bulk population, the listing entry's hints) attached,
// DInLookup cleared, hash table and LRU entered. The injected
// testSkipInLookupClear bug leaves the flag set so the auditor's
// dlht_in_lookup cross-check has a real leak to catch.
func (k *Kernel) resolvePositive(parent *Dentry, comp string, d *Dentry, il *inLookupState, ino *Inode, hint fsapi.DirEntry) (*Dentry, error) {
	k.cacheMutBegin()
	parent.mu.Lock()
	if d.IsDead() {
		// A concurrent teardown (rename residual, subtree kill) reached
		// the placeholder: the outcome is stale, everyone retries.
		parent.mu.Unlock()
		k.cacheMutEnd()
		k.finishInLookup(il, errSeqRetry)
		return nil, errSeqRetry
	}
	if ino != nil {
		d.inode.Store(ino)
	} else {
		d.hintID = hint.ID
		d.hintType = hint.Type
		d.setFlags(DUnhydrated)
	}
	if !k.testSkipInLookupClear {
		d.clearFlags(DInLookup)
	}
	parent.mu.Unlock()
	k.table.insert(parent.id, comp, d)
	k.lru.add(d)
	k.cacheMutEnd()
	k.finishInLookup(il, nil)
	k.maybeShrink()
	if d.Flags()&DUnhydrated != 0 {
		if err := k.hydrate(d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// resolveNegative resolves the placeholder to a negative dentry (the
// name is authoritatively absent), or removes it when this file system
// may not cache negatives.
func (k *Kernel) resolveNegative(parent *Dentry, comp string, d *Dentry, il *inLookupState) {
	if !k.negativesAllowed(parent.sb) {
		k.resolveRemove(parent, comp, d, il, fsapi.ENOENT)
		return
	}
	k.cacheMutBegin()
	parent.mu.Lock()
	if d.IsDead() {
		parent.mu.Unlock()
		k.cacheMutEnd()
		k.finishInLookup(il, errSeqRetry)
		return
	}
	d.setFlags(DNegative)
	if !k.testSkipInLookupClear {
		d.clearFlags(DInLookup)
	}
	parent.mu.Unlock()
	k.table.insert(parent.id, comp, d)
	k.lru.add(d)
	k.cacheMutEnd()
	k.finishInLookup(il, fsapi.ENOENT)
	k.maybeShrink()
}

// resolveRemove abandons the placeholder (backend error, or a negative
// outcome that may not be cached): the slot is vacated so a later walk
// retries against the backend.
func (k *Kernel) resolveRemove(parent *Dentry, comp string, d *Dentry, il *inLookupState, err error) {
	k.cacheMutBegin()
	parent.mu.Lock()
	d.setFlags(DDead)
	if cur, ok := parent.children[comp]; ok && cur == d {
		delete(parent.children, comp)
		parent.nkids.Add(-1)
		parent.listValid = false
	}
	parent.mu.Unlock()
	k.cacheMutEnd()
	k.finishInLookup(il, err)
	// The placeholder never entered the hash table or LRU; only its slab
	// slot needs reclaiming. Coalesced waiters still holding it are
	// inside their walks' epoch sections, which is exactly what the
	// grace period covers.
	k.retireLater(d, 0, "", false)
}

// finishInLookup publishes the outcome and wakes the coalesced waiters.
// Must be called exactly once per placeholder, after its cache state is
// final.
func (k *Kernel) finishInLookup(il *inLookupState, err error) {
	il.err = err
	k.inLookupCount.Add(-1)
	close(il.done)
}

// bulkEligible reports whether the miss streak under parent justifies
// readdir-driven bulk population: directory completeness must be on (the
// populated child set is about to become authoritative), BulkAfter
// positive and crossed, the backend must have declared ReadDir cheap,
// and the directory must not already be complete.
func (k *Kernel) bulkEligible(parent *Dentry, streak int32) bool {
	return k.cfg.DirCompleteness &&
		k.cfg.BulkAfter > 0 &&
		streak >= int32(k.cfg.BulkAfter) &&
		parent.sb.caps.CheapReadDir &&
		parent.Flags()&DComplete == 0
}

// bulkPopulate converts a per-name miss storm into one ReadDir: every
// child of parent is installed as an unhydrated dentry, the placeholder
// for comp resolves from its own listing entry (or negative when absent),
// and the directory is marked DIR_COMPLETE so each further miss under it
// is answered from the cache — O(children) round trips become one.
// handled=false (the ReadDir itself failed) falls back to the per-name
// Lookup.
func (k *Kernel) bulkPopulate(parent *Dentry, pIno *Inode, comp string, d *Dentry, il *inLookupState, tr *telemetry.WalkTrace) (res *Dentry, err error, handled bool) {
	startEpoch := k.lru.Epoch()
	tel := k.tel.Load()
	var fsStart time.Time
	if tel.On() {
		fsStart = time.Now()
	}
	ents, _, eof, rerr := parent.sb.fs.ReadDir(pIno.ID(), 0, -1)
	if !fsStart.IsZero() {
		dur := time.Since(fsStart)
		tel.Record(telemetry.HistFSLookup, dur)
		tr.EventDur(telemetry.EvBulkPopulate, fmt.Sprintf("%s: %d entries", comp, len(ents)), dur)
	}
	if rerr != nil {
		return nil, nil, false
	}
	parent.missStreak.Store(0)
	k.stats.cell().bulkPopulations.Add(1)

	var own *fsapi.DirEntry
	installed := 0
	k.cacheMutBegin()
	for i := range ents {
		if ents[i].Name == comp {
			own = &ents[i]
			continue
		}
		if k.installUnhydrated(parent, ents[i]) {
			installed++
		}
	}
	k.cacheMutEnd()

	// Resolve our own placeholder from its listing entry.
	if own != nil {
		res, err = k.resolvePositive(parent, comp, d, il, nil, *own)
		installed++
	} else {
		k.resolveNegative(parent, comp, d, il)
		res, err = nil, fsapi.ENOENT
	}

	// Completeness: only when the listing was exhaustive and no eviction
	// raced the population (the same guard File.ReadDir applies).
	if eof && k.lru.Epoch() == startEpoch {
		k.cacheMutBegin()
		parent.setFlags(DComplete)
		k.cacheMutEnd()
		if jt := k.journal(); jt != nil {
			jt.Emit(telemetry.JDirComplete, parent.ID(), 0, "bulk")
		}
	}
	if jt := k.journal(); jt != nil {
		jt.Emit(telemetry.JBulkPopulate, parent.ID(), int64(installed), "")
	}
	return res, err, true
}

// installUnhydrated installs one listing entry as an unhydrated child of
// parent, winning the slot under parent.mu before allocating anything (no
// dead-on-arrival dentries). Live incumbents — including other walks'
// in-lookup placeholders, which their own winners will resolve — are left
// alone. Reports whether a dentry was installed. The caller holds a
// cacheMut bracket.
func (k *Kernel) installUnhydrated(parent *Dentry, e fsapi.DirEntry) bool {
	parent.mu.Lock()
	if cur, ok := parent.children[e.Name]; ok && !cur.IsDead() {
		parent.mu.Unlock()
		return false
	}
	d := k.newDentry(parent.sb, parent, e.Name)
	d.setFlags(DUnhydrated)
	d.hintID = e.ID
	d.hintType = e.Type
	if k.hooks != nil {
		d.fast = k.hooks.NewDentry(d)
	}
	if parent.children == nil {
		parent.children = make(map[string]*Dentry, 4)
	}
	parent.children[e.Name] = d
	parent.listValid = false
	parent.mu.Unlock()
	parent.nkids.Add(1)
	k.lru.add(d)
	k.table.insert(parent.id, e.Name, d)
	return true
}

// negativesAllowed applies the §5.2 policy: pseudo file systems get
// negative dentries only under AggressiveNegatives.
func (k *Kernel) negativesAllowed(sb *Super) bool {
	if k.cfg.DisableNegatives {
		return false
	}
	if sb.caps.NoNegatives && !k.cfg.AggressiveNegatives {
		return false
	}
	return true
}

// installDedup inserts d under (parent, name) unless a concurrent walk won
// the race, in which case d is discarded in favor of the incumbent.
func (k *Kernel) installDedup(parent *Dentry, name string, d *Dentry) *Dentry {
	parent.mu.Lock()
	if cur, ok := parent.children[name]; ok && !cur.IsDead() {
		parent.mu.Unlock()
		// Lost the race: drop our speculative dentry.
		k.discardDentry(d)
		return cur
	}
	if parent.children == nil {
		parent.children = make(map[string]*Dentry, 4)
	}
	parent.children[name] = d
	parent.listValid = false
	parent.mu.Unlock()
	parent.nkids.Add(1)
	k.table.insert(parent.id, name, d)
	k.maybeShrink()
	return d
}

// revalidate re-fetches a dentry's node from the low-level FS (the GETATTR
// round trip of an NFS-style client) and refreshes the cached inode.
// ESTALE (or any failure) means the server-side object is gone.
func (k *Kernel) revalidate(d *Dentry) error {
	ino := d.Inode()
	if ino == nil {
		if d.Flags()&DUnhydrated != 0 {
			return k.hydrate(d)
		}
		return fsapi.ESTALE
	}
	info, err := d.sb.fs.GetNode(ino.ID())
	if err != nil {
		return err
	}
	ino.applyInfo(info)
	return nil
}

// readLinkBody returns the symlink target, caching it in the dentry as
// Linux caches symlink bodies in the page cache.
func (k *Kernel) readLinkBody(d *Dentry) (string, error) {
	if v := d.linkBody.Load(); v != nil {
		return *v, nil
	}
	ino := d.Inode()
	if ino == nil {
		return "", errSeqRetry
	}
	target, err := d.sb.fs.ReadLink(ino.ID())
	if err != nil {
		return "", err
	}
	if target == "" {
		return "", fsapi.EINVAL
	}
	d.linkBody.Store(&target)
	return target, nil
}

// walkParent resolves everything but the last component, returning the
// parent directory and the final name. Used by create-style and
// remove-style operations.
func (t *Task) walkParent(path string) (PathRef, string, error) {
	return t.walkParentAt(PathRef{}, path)
}

// walkParentAt is walkParent starting at `at` for relative paths.
func (t *Task) walkParentAt(at PathRef, path string) (PathRef, string, error) {
	if path == "" {
		return PathRef{}, "", fsapi.ENOENT
	}
	if len(path) >= MaxPath {
		return PathRef{}, "", fsapi.ENAMETOOLONG
	}
	// Strip trailing slashes.
	end := len(path)
	for end > 0 && path[end-1] == '/' {
		end--
	}
	if end == 0 {
		// Path was "/" (or all slashes): no parent to speak of.
		return PathRef{}, "", fsapi.EBUSY
	}
	i := end - 1
	for i >= 0 && path[i] != '/' {
		i--
	}
	last := path[i+1 : end]
	if last == "." || last == ".." {
		return PathRef{}, "", fsapi.EINVAL
	}
	if len(last) > 255 {
		return PathRef{}, "", fsapi.ENAMETOOLONG
	}
	var dir string
	switch {
	case i < 0:
		dir = "."
	case i == 0:
		dir = "/"
	default:
		dir = path[:i]
	}
	ref, err := t.WalkFrom(at, dir, WalkDirectory)
	if err != nil {
		return PathRef{}, "", err
	}
	return ref, last, nil
}
