package vfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/lsm"
	"dircache/internal/memfs"
	"dircache/internal/pseudofs"
)

func TestMountCrossing(t *testing.T) {
	k, root := newKernel(t, Config{})
	data := memfs.New(memfs.Options{Name: "data"})
	if err := root.Mkdir("/mnt", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Mount(data, "/mnt", 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/mnt/inside", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Create("/mnt/inside/file", 0o644); err != nil {
		t.Fatal(err)
	}
	ni, err := root.Stat("/mnt/inside/file")
	if err != nil {
		t.Fatal(err)
	}
	// The file must live on the mounted FS, not the root FS.
	if got, err := data.Lookup(data.Root().ID, "inside"); err != nil || got.Mode.Type() != fsapi.TypeDirectory {
		t.Fatalf("mounted fs does not hold the dir: %v", err)
	}
	_ = ni
	// Dot-dot climbs out of the mount.
	if err := root.Chdir("/mnt/inside"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("../../etc/passwd"); err != nil {
		t.Fatalf("dotdot across mountpoint: %v", err)
	}
	if got := root.Getcwd(); got != "/mnt/inside" {
		t.Fatalf("getcwd across mount: %q", got)
	}
	_ = k
}

func TestMountStackingAndUnmount(t *testing.T) {
	_, root := newKernel(t, Config{})
	lower := memfs.New(memfs.Options{})
	upper := memfs.New(memfs.Options{})
	root.Mkdir("/mnt", 0o755)
	if _, err := root.Mount(lower, "/mnt", 0); err != nil {
		t.Fatal(err)
	}
	root.Create("/mnt/lower-file", 0o644)
	// Mounting again stacks on top (as mount(2) does): the new FS covers
	// the previous one.
	if _, err := root.Mount(upper, "/mnt", 0); err != nil {
		t.Fatalf("stacked mount: %v", err)
	}
	root.Create("/mnt/upper-file", 0o644)
	if _, err := root.Stat("/mnt/lower-file"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal("lower mount visible through upper")
	}
	// Unmount the top: the lower mount shows through again.
	if err := root.Unmount("/mnt"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/mnt/lower-file"); err != nil {
		t.Fatalf("lower mount lost: %v", err)
	}
	if _, err := root.Stat("/mnt/upper-file"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal("upper mount still visible")
	}
	// Unmount again: the original empty directory shows through.
	if err := root.Unmount("/mnt"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/mnt/lower-file"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("unmount did not uncover mountpoint: %v", err)
	}
}

func TestReadOnlyMount(t *testing.T) {
	_, root := newKernel(t, Config{})
	data := memfs.New(memfs.Options{})
	root.Mkdir("/ro", 0o755)
	if _, err := root.Mount(data, "/ro", MntReadOnly); err != nil {
		t.Fatal(err)
	}
	if err := root.Create("/ro/x", 0o644); !errors.Is(err, fsapi.EROFS) {
		t.Fatalf("create on ro mount: %v", err)
	}
	if err := root.Mkdir("/ro/d", 0o755); !errors.Is(err, fsapi.EROFS) {
		t.Fatalf("mkdir on ro mount: %v", err)
	}
}

func TestBindMountAlias(t *testing.T) {
	_, root := newKernel(t, Config{})
	root.Mkdir("/data", 0o755)
	root.Create("/data/file", 0o644)
	root.Mkdir("/alias", 0o755)
	if _, err := root.BindMount("/data", "/alias", 0); err != nil {
		t.Fatal(err)
	}
	n1, err := root.Stat("/data/file")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := root.Stat("/alias/file")
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID != n2.ID {
		t.Fatal("bind mount does not alias the same inode")
	}
	// A write through one alias is visible through the other.
	f, err := root.Open("/alias/file", O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.Close()
	n1, _ = root.Stat("/data/file")
	if n1.Size != 5 {
		t.Fatalf("write through alias invisible: size %d", n1.Size)
	}
}

func TestMountNamespacePrivacy(t *testing.T) {
	k, root := newKernel(t, Config{})
	other := k.NewTask(cred.Root())
	other.UnshareNamespace()

	root.Mkdir("/mnt", 0o755)
	private := memfs.New(memfs.Options{})
	if _, err := other.Mount(private, "/mnt", 0); err != nil {
		t.Fatal(err)
	}
	if err := other.Create("/mnt/private-file", 0o644); err != nil {
		t.Fatal(err)
	}
	// The initial namespace must not see the private mount.
	if _, err := root.Stat("/mnt/private-file"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("namespace leak: %v", err)
	}
	if _, err := other.Stat("/mnt/private-file"); err != nil {
		t.Fatalf("owner namespace lost its mount: %v", err)
	}
	// Both namespaces share the underlying root fs dentries.
	if _, err := other.Stat("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoFSNegativePolicy(t *testing.T) {
	// Baseline: no negative dentries on proc (NoNegatives capability).
	k, root := newKernel(t, Config{})
	proc := pseudofs.BuildProc(10)
	root.Mkdir("/proc", 0o755)
	if _, err := root.Mount(proc, "/proc", 0); err != nil {
		t.Fatal(err)
	}
	root.Stat("/proc/999")
	before := k.Stats().FSLookups
	root.Stat("/proc/999")
	if k.Stats().FSLookups != before+1 {
		t.Fatal("baseline cached a negative dentry on a pseudo FS")
	}

	// Optimized policy: negatives allowed (§5.2).
	k2, root2 := newKernel(t, Config{AggressiveNegatives: true})
	proc2 := pseudofs.BuildProc(10)
	root2.Mkdir("/proc", 0o755)
	if _, err := root2.Mount(proc2, "/proc", 0); err != nil {
		t.Fatal(err)
	}
	root2.Stat("/proc/999")
	before = k2.Stats().FSLookups
	root2.Stat("/proc/999")
	if k2.Stats().FSLookups != before {
		t.Fatal("aggressive mode did not cache pseudo-FS negative")
	}
	// Real proc entries still resolve.
	if _, err := root2.Stat("/proc/7/status"); err != nil {
		t.Fatal(err)
	}
}

func TestReaddirCompleteness(t *testing.T) {
	k, root := newKernel(t, Config{DirCompleteness: true})
	root.Mkdir("/spool", 0o755)
	for i := 0; i < 20; i++ {
		root.Create(fmt.Sprintf("/spool/msg%02d", i), 0o644)
	}
	// Drop dentries so the listing must come from the FS once.
	k.DropCaches()

	d, err := root.Open("/spool", O_RDONLY|O_DIRECTORY, 0)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := d.ReadDirAll()
	if err != nil || len(ents) != 20 {
		t.Fatalf("first listing: %d %v", len(ents), err)
	}
	d.Close()
	fsReads := k.Stats().ReaddirFS

	// Second listing must be served from the cache.
	d2, _ := root.Open("/spool", O_RDONLY|O_DIRECTORY, 0)
	ents2, err := d2.ReadDirAll()
	if err != nil || len(ents2) != 20 {
		t.Fatalf("second listing: %d %v", len(ents2), err)
	}
	d2.Close()
	if k.Stats().ReaddirFS != fsReads {
		t.Fatal("complete directory still hit the FS for readdir")
	}
	if k.Stats().ReaddirCached == 0 {
		t.Fatal("cached readdir not counted")
	}

	// Lookups of listed names hydrate instead of searching the directory.
	fsLookups := k.Stats().FSLookups
	if _, err := root.Stat("/spool/msg05"); err != nil {
		t.Fatal(err)
	}
	if k.Stats().FSLookups != fsLookups {
		t.Fatal("lookup of readdir-cached name searched the directory")
	}
	if k.Stats().Hydrations == 0 {
		t.Fatal("no hydration recorded")
	}

	// Misses under a complete directory are authoritative.
	fsLookups = k.Stats().FSLookups
	if _, err := root.Stat("/spool/absent"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal(err)
	}
	if k.Stats().FSLookups != fsLookups {
		t.Fatal("miss under complete dir reached the FS")
	}
	if k.Stats().CompleteShort == 0 {
		t.Fatal("completeness shortcut not counted")
	}
}

func TestCompletenessSurvivesMutations(t *testing.T) {
	k, root := newKernel(t, Config{DirCompleteness: true})
	root.Mkdir("/d", 0o755) // fresh dir: born complete
	fsReads := k.Stats().ReaddirFS
	d, _ := root.Open("/d", O_RDONLY|O_DIRECTORY, 0)
	ents, _ := d.ReadDirAll()
	d.Close()
	if len(ents) != 0 || k.Stats().ReaddirFS != fsReads {
		t.Fatal("fresh mkdir was not born complete")
	}
	// Create and unlink keep completeness (the cache tracks them).
	root.Create("/d/a", 0o644)
	root.Create("/d/b", 0o644)
	root.Unlink("/d/a")
	d, _ = root.Open("/d", O_RDONLY|O_DIRECTORY, 0)
	ents, _ = d.ReadDirAll()
	d.Close()
	if k.Stats().ReaddirFS != fsReads {
		t.Fatal("listing after tracked mutations hit the FS")
	}
	if len(ents) != 1 || ents[0].Name != "b" {
		t.Fatalf("listing wrong after mutations: %v", ents)
	}
}

func TestCompletenessClearedByEviction(t *testing.T) {
	k, root := newKernel(t, Config{DirCompleteness: true})
	root.Mkdir("/d", 0o755)
	for i := 0; i < 10; i++ {
		root.Create(fmt.Sprintf("/d/f%d", i), 0o644)
	}
	// Evict everything: completeness must not survive.
	k.DropCaches()
	d, _ := root.Open("/d", O_RDONLY|O_DIRECTORY, 0)
	ents, err := d.ReadDirAll()
	d.Close()
	if err != nil || len(ents) != 10 {
		t.Fatalf("listing after eviction: %d %v", len(ents), err)
	}
	if k.Stats().ReaddirFS == 0 {
		t.Fatal("listing after eviction did not consult the FS")
	}
}

func TestSeekBreaksCompletenessAccumulation(t *testing.T) {
	k, root := newKernel(t, Config{DirCompleteness: true})
	root.Mkdir("/d", 0o755)
	for i := 0; i < 10; i++ {
		root.Create(fmt.Sprintf("/d/f%d", i), 0o644)
	}
	k.DropCaches()
	d, _ := root.Open("/d", O_RDONLY|O_DIRECTORY, 0)
	d.ReadDir(3)
	d.Seek(2, 0) // arbitrary seek: this pass may no longer mark complete
	d.ReadDirAll()
	d.Close()
	if root.k.initNS.root.sb.root.child("d").Flags()&DComplete != 0 {
		t.Fatal("seeked readdir pass still marked the directory complete")
	}
}

func TestLSMIntegration(t *testing.T) {
	k, root := newKernel(t, Config{})
	policy := lsm.NewLabelPolicy()
	policy.Allow("webapp", "webdata", lsm.MayRead|lsm.MayExec)
	k.LSM().Register(policy)

	root.Mkdir("/srv", 0o755)
	root.Mkdir("/srv/www", 0o755)
	root.Create("/srv/www/index.html", 0o644)
	if err := root.SetLabel("/srv/www", "webdata"); err != nil {
		t.Fatal(err)
	}
	if err := root.SetLabel("/srv/www/index.html", "webdata"); err != nil {
		t.Fatal(err)
	}

	confined := k.NewTask(cred.New(2000, 2000, nil, "webapp"))
	if _, err := confined.Stat("/srv/www/index.html"); err != nil {
		t.Fatalf("allowed read denied: %v", err)
	}
	if _, err := confined.Open("/srv/www/index.html", O_WRONLY, 0); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("LSM write denial missing: %v", err)
	}
	// A label the policy doesn't know blocks even world-readable files.
	root.Create("/srv/www/secret", 0o644)
	root.SetLabel("/srv/www/secret", "secret")
	if _, err := confined.Open("/srv/www/secret", O_RDONLY, 0); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("unknown label readable: %v", err)
	}
	// DAC still applies before LSM.
	unconfined := k.NewTask(cred.New(2000, 2000, nil, ""))
	if _, err := unconfined.Open("/home/bob/secret/key", O_RDONLY, 0); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("DAC skipped: %v", err)
	}
}

func TestConcurrentLookupsAndRenames(t *testing.T) {
	for _, mode := range []SyncMode{SyncRCU, SyncBucketLock, SyncBigLock} {
		t.Run(mode.String(), func(t *testing.T) {
			k, root := newKernel(t, Config{SyncMode: mode})
			for i := 0; i < 8; i++ {
				root.Mkdir(fmt.Sprintf("/work%d", i), 0o755)
				for j := 0; j < 8; j++ {
					root.Create(fmt.Sprintf("/work%d/f%d", i, j), 0o644)
				}
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Readers hammer stable paths.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					tt := k.NewTask(cred.Root())
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						p := fmt.Sprintf("/work%d/f%d", i%4, i%8)
						if _, err := tt.Stat(p); err != nil {
							t.Errorf("reader: stat %s: %v", p, err)
							return
						}
					}
				}(r)
			}
			// Writers rename files back and forth in the other dirs.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tt := k.NewTask(cred.Root())
					base := fmt.Sprintf("/work%d", 4+w)
					for i := 0; i < 200; i++ {
						old := fmt.Sprintf("%s/f%d", base, i%8)
						new := fmt.Sprintf("%s/g%d", base, i%8)
						if err := tt.Rename(old, new); err != nil {
							t.Errorf("rename: %v", err)
							return
						}
						if err := tt.Rename(new, old); err != nil {
							t.Errorf("rename back: %v", err)
							return
						}
					}
				}(w)
			}
			// Let writers finish, then stop readers.
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			// Writers have bounded loops; readers stop when signaled.
			for w := 0; w < 50; w++ {
				select {
				case <-done:
					w = 50
				default:
				}
			}
			close(stop)
			<-done
		})
	}
}

func TestForkSharesCred(t *testing.T) {
	k, _ := newKernel(t, Config{})
	parent := k.NewTask(cred.New(500, 500, nil, ""))
	child := parent.Fork()
	if parent.Cred() != child.Cred() {
		t.Fatal("fork did not share the credential")
	}
	// setuid-style change via prepare/commit allocates a fresh cred.
	p := child.Cred().Prepare()
	p.UID = 0
	child.SetCred(cred.Commit(child.Cred(), p))
	if parent.Cred() == child.Cred() {
		t.Fatal("commit after change still shared")
	}
}

func TestUnhydratedLstatType(t *testing.T) {
	// A dentry created from readdir knows its type without an inode;
	// hydration must deliver full metadata.
	k, root := newKernel(t, Config{DirCompleteness: true})
	root.Mkdir("/d", 0o755)
	root.Create("/d/f", 0o640)
	root.Symlink("/d/f", "/d/l")
	k.DropCaches()
	d, _ := root.Open("/d", O_RDONLY|O_DIRECTORY, 0)
	ents, _ := d.ReadDirAll()
	d.Close()
	types := map[string]fsapi.FileType{}
	for _, e := range ents {
		types[e.Name] = e.Type
	}
	if types["f"] != fsapi.TypeRegular || types["l"] != fsapi.TypeSymlink {
		t.Fatalf("readdir types: %v", types)
	}
	ni, err := root.Lstat("/d/f")
	if err != nil || ni.Mode.Perm() != 0o640 {
		t.Fatalf("hydrated stat: %+v %v", ni, err)
	}
}
