package vfs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/memfs"
	"dircache/internal/remotefs"
)

// gateFS wraps a backing file system and blocks the first Lookup of one
// armed name until released, so a test can hold a miss in flight while
// concurrent walks pile onto its in-lookup placeholder.
type gateFS struct {
	fsapi.FileSystem
	mu      sync.Mutex
	armed   string
	failErr error
	entered chan struct{} // closed when the gated Lookup arrives
	release chan struct{} // the gated Lookup blocks until this closes
}

func newGateFS(backing fsapi.FileSystem) *gateFS {
	return &gateFS{FileSystem: backing}
}

// arm gates the next Lookup of name; if failErr is non-nil the gated call
// returns it instead of consulting the backing FS.
func (g *gateFS) arm(name string, failErr error) {
	g.mu.Lock()
	g.armed = name
	g.failErr = failErr
	g.entered = make(chan struct{})
	g.release = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateFS) Lookup(dir fsapi.NodeID, name string) (fsapi.NodeInfo, error) {
	g.mu.Lock()
	gated := g.armed == name
	var entered, release chan struct{}
	var failErr error
	if gated {
		g.armed = "" // one-shot: later lookups of the name pass through
		entered, release, failErr = g.entered, g.release, g.failErr
	}
	g.mu.Unlock()
	if gated {
		close(entered)
		<-release
		if failErr != nil {
			return fsapi.NodeInfo{}, failErr
		}
	}
	return g.FileSystem.Lookup(dir, name)
}

// newStormKernel builds a kernel over gate(memfs) seen through remotefs,
// so the test can both hold a backend Lookup in flight and count the RPCs
// the storm actually issued.
func newStormKernel(t *testing.T, mode SyncMode) (*Kernel, *Task, *gateFS, *remotefs.FS) {
	t.Helper()
	gate := newGateFS(memfs.New(memfs.Options{}))
	remote := remotefs.New(gate, remotefs.Options{RTTNanos: 1})
	k := NewKernel(Config{SyncMode: mode}, remote)
	root := k.NewTask(cred.Root())
	if err := root.Mkdir("/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Create("/dir/target", 0o644); err != nil {
		t.Fatal(err)
	}
	// Creation cached the new dentries; drop them so the storm's walks are
	// cold, then re-warm just the parent so the only miss left is the
	// final component.
	k.DropCaches()
	if _, err := root.Stat("/dir"); err != nil {
		t.Fatal(err)
	}
	return k, root, gate, remote
}

// stormResult is one racing walker's outcome.
type stormResult struct {
	info fsapi.NodeInfo
	err  error
}

// runStorm launches kN concurrent walks of path, waits until the gated
// backend Lookup is in flight and every other walker has coalesced onto
// the placeholder, then releases the gate and collects all outcomes.
func runStorm(t *testing.T, k *Kernel, path string, kN int, gate *gateFS) []stormResult {
	t.Helper()
	before := k.Stats()
	results := make([]stormResult, kN)
	var wg sync.WaitGroup
	for i := 0; i < kN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			task := k.NewTask(cred.Root())
			info, err := task.Stat(path)
			results[i] = stormResult{info: info, err: err}
		}(i)
	}
	<-gate.entered
	// All walkers that did not win the slot must have joined the in-flight
	// lookup before the gate opens, or the test would not be exercising
	// coalescing at all.
	deadline := time.Now().Add(10 * time.Second)
	for {
		d := k.Stats().Delta(before)
		if d.MissCoalesced >= int64(kN-1) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d walkers coalesced", d.MissCoalesced, kN-1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(gate.release)
	wg.Wait()
	return results
}

// TestMissCoalescing proves the singleflight: K concurrent walks missing
// on the same component issue exactly one backend LOOKUP, and every
// walker adopts the winner's result.
func TestMissCoalescing(t *testing.T) {
	const K = 8
	for _, mode := range []SyncMode{SyncRCU, SyncBucketLock} {
		t.Run(mode.String(), func(t *testing.T) {
			k, _, gate, remote := newStormKernel(t, mode)
			pre := remote.OpCount("lookup")
			gate.arm("target", nil)
			results := runStorm(t, k, "/dir/target", K, gate)
			if got := remote.OpCount("lookup") - pre; got != 1 {
				t.Fatalf("storm of %d walks issued %d backend lookups, want exactly 1", K, got)
			}
			for i, r := range results {
				if r.err != nil {
					t.Fatalf("walker %d: %v", i, r.err)
				}
				if r.info.ID != results[0].info.ID {
					t.Fatalf("walker %d resolved node %d, walker 0 resolved %d", i, r.info.ID, results[0].info.ID)
				}
			}
			d := k.Stats()
			if d.MissCoalesced < K-1 {
				t.Fatalf("MissCoalesced = %d, want >= %d", d.MissCoalesced, K-1)
			}
			if k.InLookupCount() != 0 {
				t.Fatalf("in-lookup gauge = %d after storm, want 0", k.InLookupCount())
			}
		})
	}
}

// TestMissCoalescingENOENT is the negative variant: the storm races on a
// name that does not exist; one LOOKUP answers every walker with ENOENT.
func TestMissCoalescingENOENT(t *testing.T) {
	const K = 8
	k, _, gate, remote := newStormKernel(t, SyncRCU)
	pre := remote.OpCount("lookup")
	gate.arm("ghost", nil)
	results := runStorm(t, k, "/dir/ghost", K, gate)
	if got := remote.OpCount("lookup") - pre; got != 1 {
		t.Fatalf("ENOENT storm of %d walks issued %d backend lookups, want exactly 1", K, got)
	}
	for i, r := range results {
		if !errors.Is(r.err, fsapi.ENOENT) {
			t.Fatalf("walker %d: got %v, want ENOENT", i, r.err)
		}
	}
	if k.InLookupCount() != 0 {
		t.Fatalf("in-lookup gauge = %d after storm, want 0", k.InLookupCount())
	}
}

// TestMissCoalescingBackendError proves error propagation and retry: the
// winner's backend error reaches every coalesced walker, the placeholder
// is removed rather than cached, and the next walk consults the backend
// afresh.
func TestMissCoalescingBackendError(t *testing.T) {
	const K = 8
	k, root, gate, remote := newStormKernel(t, SyncRCU)
	pre := remote.OpCount("lookup")
	gate.arm("target", fsapi.EIO)
	results := runStorm(t, k, "/dir/target", K, gate)
	if got := remote.OpCount("lookup") - pre; got != 1 {
		t.Fatalf("failing storm of %d walks issued %d backend lookups, want exactly 1", K, got)
	}
	for i, r := range results {
		if !errors.Is(r.err, fsapi.EIO) {
			t.Fatalf("walker %d: got %v, want EIO", i, r.err)
		}
	}
	if k.InLookupCount() != 0 {
		t.Fatalf("in-lookup gauge = %d after storm, want 0", k.InLookupCount())
	}
	// The error was not cached: a later walk retries the backend and
	// resolves the (existing) name.
	if _, err := root.Stat("/dir/target"); err != nil {
		t.Fatalf("post-error stat: %v", err)
	}
	if got := remote.OpCount("lookup") - pre; got != 2 {
		t.Fatalf("post-error stat issued %d total lookups, want 2", remote.OpCount("lookup")-pre)
	}
}

// TestBulkPopulate proves readdir-driven bulk population: a cold per-name
// miss streak under one directory flips to a single ReadDir that installs
// every child and marks the directory complete, so the rest of the scan
// never consults the FS per name and absent names answer from
// completeness.
func TestBulkPopulate(t *testing.T) {
	const children = 16
	k := NewKernel(Config{DirCompleteness: true}, memfs.New(memfs.Options{}))
	root := k.NewTask(cred.Root())
	if err := root.Mkdir("/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	names := make([]string, children)
	for i := range names {
		names[i] = string(rune('a' + i))
		if err := root.Create("/dir/"+names[i], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	k.DropCaches()
	if _, err := root.Stat("/dir"); err != nil {
		t.Fatal(err)
	}

	before := k.Stats()
	for _, n := range names {
		if _, err := root.Stat("/dir/" + n); err != nil {
			t.Fatalf("stat %s: %v", n, err)
		}
	}
	d := k.Stats().Delta(before)
	if d.BulkPopulations != 1 {
		t.Fatalf("BulkPopulations = %d, want 1", d.BulkPopulations)
	}
	// BulkAfter defaults to 3: two per-name lookups, then the third miss
	// triggers the ReadDir; everything after is served from the cache.
	if d.FSLookups != 2 {
		t.Fatalf("FSLookups = %d, want 2 (misses before the bulk threshold)", d.FSLookups)
	}
	ref, err := root.Walk("/dir", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ref.D.Flags()&DComplete == 0 {
		t.Fatal("directory not marked DIR_COMPLETE after bulk population")
	}
	// An absent name now answers from completeness, not the FS.
	before = k.Stats()
	if _, err := root.Stat("/dir/nope"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("stat absent: %v, want ENOENT", err)
	}
	d = k.Stats().Delta(before)
	if d.FSLookups != 0 || d.CompleteShort != 1 {
		t.Fatalf("absent name: FSLookups=%d CompleteShort=%d, want 0/1", d.FSLookups, d.CompleteShort)
	}
}

// TestBulkPopulateDisabled proves the negative BulkAfter switch: the same
// cold scan issues one FS lookup per name and never bulk-populates.
func TestBulkPopulateDisabled(t *testing.T) {
	const children = 8
	k := NewKernel(Config{DirCompleteness: true, BulkAfter: -1}, memfs.New(memfs.Options{}))
	root := k.NewTask(cred.Root())
	if err := root.Mkdir("/dir", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < children; i++ {
		if err := root.Create("/dir/"+string(rune('a'+i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	k.DropCaches()
	if _, err := root.Stat("/dir"); err != nil {
		t.Fatal(err)
	}
	before := k.Stats()
	for i := 0; i < children; i++ {
		if _, err := root.Stat("/dir/" + string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	d := k.Stats().Delta(before)
	if d.BulkPopulations != 0 {
		t.Fatalf("BulkPopulations = %d with BulkAfter < 0, want 0", d.BulkPopulations)
	}
	if d.FSLookups != children {
		t.Fatalf("FSLookups = %d, want %d (one per name)", d.FSLookups, children)
	}
}
