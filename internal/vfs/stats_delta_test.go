package vfs

import (
	"reflect"
	"testing"
)

// TestStatsDeltaCoverage fails when a counter added to Stats is missing
// from the hand-written Delta: every field is filled with a distinct
// value and the difference checked by reflection. (Stats has no gauges;
// if one is ever added, give it a pass-through case in Delta and an
// exemption here.)
func TestStatsDeltaCoverage(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	var prev, cur Stats
	pv := reflect.ValueOf(&prev).Elem()
	cv := reflect.ValueOf(&cur).Elem()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Fatalf("Stats.%s is %s; Delta and the striped cells assume int64", f.Name, f.Type)
		}
		pv.Field(i).SetInt(int64(i + 1))
		cv.Field(i).SetInt(int64((i + 1) * 7))
	}
	d := cur.Delta(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < typ.NumField(); i++ {
		got, want := dv.Field(i).Int(), int64((i+1)*7-(i+1))
		if got != want {
			t.Errorf("Delta.%s = %d, want %d — field missing from the hand-written Delta?",
				typ.Field(i).Name, got, want)
		}
	}
}
