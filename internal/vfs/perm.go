package vfs

import (
	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/lsm"
)

// permission implements the kernel's inode_permission: Unix discretionary
// access control followed by the LSM stack. mnt supplies mount options
// (noexec); it may be nil where mount context is unavailable.
func (k *Kernel) permission(c *cred.Cred, mnt *Mount, ino *Inode, mask lsm.Mask) error {
	mode := ino.Mode()

	if mask&lsm.MayExec != 0 && mnt != nil && mnt.flags&MntNoExec != 0 && mode.IsRegular() {
		return fsapi.EACCES
	}

	if err := dacPermission(c, mode, ino.UID(), ino.GID(), mask); err != nil {
		return err
	}
	if k.lsm.Empty() {
		return nil
	}
	return k.lsm.Check(c, ino.View(), mask)
}

// dacPermission is the classic owner/group/other bit check.
func dacPermission(c *cred.Cred, mode fsapi.Mode, uid, gid uint32, mask lsm.Mask) error {
	if c.IsRoot() {
		// Root bypasses rw checks; exec on a regular file still requires
		// at least one x bit (Linux's CAP_DAC_OVERRIDE subtlety).
		if mask&lsm.MayExec != 0 && mode.IsRegular() && mode.Perm()&0o111 == 0 {
			return fsapi.EACCES
		}
		return nil
	}

	var bits fsapi.Mode
	switch {
	case c.UID == uid:
		bits = mode.Perm() >> 6
	case c.InGroup(gid):
		bits = mode.Perm() >> 3
	default:
		bits = mode.Perm()
	}
	bits &= 0o7

	var want fsapi.Mode
	if mask&lsm.MayRead != 0 {
		want |= 0o4
	}
	if mask&lsm.MayWrite != 0 {
		want |= 0o2
	}
	if mask&lsm.MayExec != 0 {
		want |= 0o1
	}
	if bits&want != want {
		return fsapi.EACCES
	}
	return nil
}

// CheckExec checks search/execute permission for a credential on an inode
// (exported for the fastpath's per-dot-dot permission checks, §4.2).
func (k *Kernel) CheckExec(c *cred.Cred, mnt *Mount, ino *Inode) error {
	return k.permission(c, mnt, ino, lsm.MayExec)
}

// mayLookup checks search permission on a directory inode — one step of a
// prefix check (§2.1).
func (k *Kernel) mayLookup(c *cred.Cred, mnt *Mount, dir *Inode) error {
	return k.permission(c, mnt, dir, lsm.MayExec)
}

// mayDelete enforces write+search on the parent plus the sticky bit rule.
func (k *Kernel) mayDelete(c *cred.Cred, mnt *Mount, dir *Inode, victim *Inode) error {
	if err := k.permission(c, mnt, dir, lsm.MayWrite|lsm.MayExec); err != nil {
		return err
	}
	if dir.Mode().Perm()&fsapi.ModeSticky != 0 && !c.IsRoot() {
		if victim != nil && victim.UID() != c.UID && dir.UID() != c.UID {
			return fsapi.EPERM
		}
	}
	return nil
}

// mayCreate enforces write+search on the parent directory.
func (k *Kernel) mayCreate(c *cred.Cred, mnt *Mount, dir *Inode) error {
	if mnt != nil && mnt.flags&MntReadOnly != 0 {
		return fsapi.EROFS
	}
	return k.permission(c, mnt, dir, lsm.MayWrite|lsm.MayExec)
}

// mayWriteMnt rejects writes on read-only mounts or read-only file systems.
func mayWriteMnt(mnt *Mount) error {
	if mnt != nil && mnt.flags&MntReadOnly != 0 {
		return fsapi.EROFS
	}
	if mnt != nil && mnt.sb.caps.ReadOnly {
		return fsapi.EROFS
	}
	return nil
}

// maskForOpen maps open flags to the access mask checked on the target.
func maskForOpen(flags OpenFlag) lsm.Mask {
	var m lsm.Mask
	switch flags & O_ACCMODE {
	case O_RDONLY:
		m = lsm.MayRead
	case O_WRONLY:
		m = lsm.MayWrite
	case O_RDWR:
		m = lsm.MayRead | lsm.MayWrite
	}
	return m
}
