package vfs

import (
	"dircache/internal/fsapi"
	"dircache/internal/lsm"
)

// OpenFlag mirrors the open(2) flag set used by the workloads.
type OpenFlag uint32

// Open flags.
const (
	O_RDONLY OpenFlag = 0
	O_WRONLY OpenFlag = 1
	O_RDWR   OpenFlag = 2
	// O_ACCMODE masks the access mode bits.
	O_ACCMODE OpenFlag = 3

	O_CREAT     OpenFlag = 1 << 6
	O_EXCL      OpenFlag = 1 << 7
	O_TRUNC     OpenFlag = 1 << 9
	O_APPEND    OpenFlag = 1 << 10
	O_DIRECTORY OpenFlag = 1 << 16
	O_NOFOLLOW  OpenFlag = 1 << 17
)

// lockBig acquires the 2.6.36-era global lock around a mutation when that
// era is selected; other eras rely on finer locks.
func (k *Kernel) lockBig() func() {
	if k.cfg.SyncMode != SyncBigLock {
		return func() {}
	}
	k.big.Lock()
	return k.big.Unlock
}

// Stat resolves path (following symlinks) and returns its metadata.
func (t *Task) Stat(path string) (fsapi.NodeInfo, error) {
	ref, err := t.Walk(path, 0)
	if err != nil {
		return fsapi.NodeInfo{}, err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.NodeInfo{}, fsapi.ENOENT
	}
	return ino.Info(), nil
}

// Lstat is Stat without following a final symlink.
func (t *Task) Lstat(path string) (fsapi.NodeInfo, error) {
	ref, err := t.Walk(path, WalkNoFollow)
	if err != nil {
		return fsapi.NodeInfo{}, err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.NodeInfo{}, fsapi.ENOENT
	}
	return ino.Info(), nil
}

// StatAt resolves path relative to the directory handle dirf (fstatat).
// A nil dirf or an absolute path behaves like Stat.
func (t *Task) StatAt(dirf *File, path string, followLinks bool) (fsapi.NodeInfo, error) {
	var fl WalkFlags
	if !followLinks {
		fl = WalkNoFollow
	}
	ref, err := t.walkAt(dirf, path, fl)
	if err != nil {
		return fsapi.NodeInfo{}, err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.NodeInfo{}, fsapi.ENOENT
	}
	return ino.Info(), nil
}

// walkAt resolves path relative to an open directory handle, mirroring
// the *at() syscall family. The handle's dentry stays pinned by the open
// file for the duration.
func (t *Task) walkAt(dirf *File, path string, fl WalkFlags) (PathRef, error) {
	if dirf == nil || (len(path) > 0 && path[0] == '/') {
		return t.Walk(path, fl)
	}
	if !dirf.ref.D.IsDir() {
		return PathRef{}, fsapi.ENOTDIR
	}
	return t.WalkFrom(dirf.ref, path, fl)
}

// Access checks whether the task may access path with the given mask.
func (t *Task) Access(path string, mask lsm.Mask) error {
	ref, err := t.Walk(path, 0)
	if err != nil {
		return err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.ENOENT
	}
	return t.k.permission(t.Cred(), ref.Mnt, ino, mask)
}

// Readlink returns the target of a symlink.
func (t *Task) Readlink(path string) (string, error) {
	ref, err := t.Walk(path, WalkNoFollow)
	if err != nil {
		return "", err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return "", fsapi.ENOENT
	}
	if !ino.Mode().IsSymlink() {
		return "", fsapi.EINVAL
	}
	return t.k.readLinkBody(ref.D)
}

// Chmod updates permission bits. Directory permission changes invalidate
// cached prefix checks below the directory (§3.2) — the deliberately
// expensive case Figure 7 measures.
func (t *Task) Chmod(path string, mode fsapi.Mode) error {
	ref, err := t.Walk(path, 0)
	if err != nil {
		return err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.ENOENT
	}
	c := t.Cred()
	if !c.IsRoot() && c.UID != ino.UID() {
		return fsapi.EPERM
	}
	if err := mayWriteMnt(ref.Mnt); err != nil {
		return err
	}
	if ino.Mode().IsDir() {
		end := t.k.beginMutation(ref.D, InvalPerm)
		defer end()
	}
	unlock := t.k.lockBig()
	defer unlock()
	m := mode.Perm()
	info, err := ref.D.sb.fs.SetAttr(ino.ID(), fsapi.SetAttr{Mode: &m})
	if err != nil {
		return err
	}
	ino.applyInfo(info)
	return nil
}

// Chown updates ownership; like chmod on directories it invalidates
// descendant prefix checks.
func (t *Task) Chown(path string, uid, gid uint32) error {
	ref, err := t.Walk(path, 0)
	if err != nil {
		return err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.ENOENT
	}
	c := t.Cred()
	if !c.IsRoot() {
		// Unprivileged chown: only a no-op owner "change" to the same uid
		// with a group the caller belongs to.
		if c.UID != ino.UID() || uid != ino.UID() || !c.InGroup(gid) {
			return fsapi.EPERM
		}
	}
	if err := mayWriteMnt(ref.Mnt); err != nil {
		return err
	}
	if ino.Mode().IsDir() {
		end := t.k.beginMutation(ref.D, InvalPerm)
		defer end()
	}
	unlock := t.k.lockBig()
	defer unlock()
	info, err := ref.D.sb.fs.SetAttr(ino.ID(), fsapi.SetAttr{UID: &uid, GID: &gid})
	if err != nil {
		return err
	}
	ino.applyInfo(info)
	return nil
}

// Truncate sets a regular file's size.
func (t *Task) Truncate(path string, size int64) error {
	ref, err := t.Walk(path, 0)
	if err != nil {
		return err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.ENOENT
	}
	if err := mayWriteMnt(ref.Mnt); err != nil {
		return err
	}
	if err := t.k.permission(t.Cred(), ref.Mnt, ino, lsm.MayWrite); err != nil {
		return err
	}
	info, err := ref.D.sb.fs.SetAttr(ino.ID(), fsapi.SetAttr{Size: &size})
	if err != nil {
		return err
	}
	ino.applyInfo(info)
	return nil
}

// SetLabel attaches an LSM object label to path's inode (the analogue of
// setting a security xattr). Root only. Directory label changes invalidate
// descendant prefix checks, since LSM search decisions may depend on them.
func (t *Task) SetLabel(path, label string) error {
	if !t.Cred().IsRoot() {
		return fsapi.EPERM
	}
	ref, err := t.Walk(path, 0)
	if err != nil {
		return err
	}
	ino := ref.D.Inode()
	if ino == nil {
		return fsapi.ENOENT
	}
	if ino.Mode().IsDir() {
		end := t.k.beginMutation(ref.D, InvalPerm)
		defer end()
	}
	ino.SetLabel(label)
	return nil
}

// Chdir moves the task's working directory.
func (t *Task) Chdir(path string) error {
	ref, err := t.Walk(path, WalkDirectory)
	if err != nil {
		return err
	}
	if err := t.k.mayLookup(t.Cred(), ref.Mnt, ref.D.Inode()); err != nil {
		return err
	}
	t.setCwd(ref)
	return nil
}

// Chroot moves the task's root directory.
func (t *Task) Chroot(path string) error {
	if !t.Cred().IsRoot() {
		return fsapi.EPERM
	}
	ref, err := t.Walk(path, WalkDirectory)
	if err != nil {
		return err
	}
	t.setRoot(ref)
	t.k.chrootCount.Add(1)
	return nil
}

// Getcwd renders the task's working directory as a path from its root.
func (t *Task) Getcwd() string {
	root := t.Root()
	cur := t.Cwd()
	var comps []string
	for {
		if cur.D == root.D && cur.Mnt == root.Mnt {
			break
		}
		if cur.D == cur.Mnt.root {
			if cur.Mnt.parent == nil {
				break
			}
			cur = PathRef{Mnt: cur.Mnt.parent, D: cur.Mnt.mountpoint}
			continue
		}
		pn := cur.D.pn.Load()
		if pn.parent == nil {
			break
		}
		comps = append(comps, pn.name)
		cur = PathRef{Mnt: cur.Mnt, D: pn.parent}
	}
	if len(comps) == 0 {
		return "/"
	}
	n := 0
	for _, c := range comps {
		n += len(c) + 1
	}
	buf := make([]byte, 0, n)
	for i := len(comps) - 1; i >= 0; i-- {
		buf = append(buf, '/')
		buf = append(buf, comps[i]...)
	}
	return string(buf)
}
