package vfs

import (
	"errors"
	"fmt"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/memfs"
)

// newKernel builds a kernel over a fresh memfs with a small standard tree:
//
//	/home/alice/{notes.txt, projects/code.go}
//	/home/bob/secret/key         (bob-only: /home/bob is 0700)
//	/etc/passwd
//	/tmp                         (world-writable, sticky)
//	/usr/include/sys/types.h
func newKernel(t *testing.T, cfg Config) (*Kernel, *Task) {
	t.Helper()
	k := NewKernel(cfg, memfs.New(memfs.Options{}))
	root := k.NewTask(cred.Root())
	mk := func(path string, mode fsapi.Mode) {
		if err := root.Mkdir(path, mode); err != nil {
			t.Fatalf("mkdir %s: %v", path, err)
		}
	}
	mk("/home", 0o755)
	mk("/home/alice", 0o755)
	mk("/home/alice/projects", 0o755)
	mk("/home/bob", 0o700)
	mk("/home/bob/secret", 0o700)
	mk("/etc", 0o755)
	mk("/tmp", 0o777|fsapi.ModeSticky)
	mk("/usr", 0o755)
	mk("/usr/include", 0o755)
	mk("/usr/include/sys", 0o755)
	touch := func(path string, mode fsapi.Mode) {
		if err := root.Create(path, mode); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
	}
	touch("/home/alice/notes.txt", 0o644)
	touch("/home/alice/projects/code.go", 0o644)
	touch("/home/bob/secret/key", 0o600)
	touch("/etc/passwd", 0o644)
	touch("/usr/include/sys/types.h", 0o644)
	if err := root.Chown("/home/alice", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/home/bob", 1001, 1001); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/home/bob/secret", 1001, 1001); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/home/bob/secret/key", 1001, 1001); err != nil {
		t.Fatal(err)
	}
	return k, root
}

func alice(k *Kernel) *Task { return k.NewTask(cred.New(1000, 1000, nil, "")) }
func bob(k *Kernel) *Task   { return k.NewTask(cred.New(1001, 1001, nil, "")) }

func TestStatBasics(t *testing.T) {
	for _, mode := range []SyncMode{SyncRCU, SyncBucketLock, SyncBigLock} {
		t.Run(mode.String(), func(t *testing.T) {
			k, root := newKernel(t, Config{SyncMode: mode})
			ni, err := root.Stat("/usr/include/sys/types.h")
			if err != nil {
				t.Fatal(err)
			}
			if !ni.Mode.IsRegular() || ni.Mode.Perm() != 0o644 {
				t.Fatalf("stat: %+v", ni)
			}
			di, err := root.Stat("/usr/include")
			if err != nil || !di.Mode.IsDir() {
				t.Fatalf("dir stat: %+v %v", di, err)
			}
			if _, err := root.Stat("/usr/include/sys/types.h/x"); !errors.Is(err, fsapi.ENOTDIR) {
				t.Fatalf("descend through file: %v", err)
			}
			if _, err := root.Stat("/no/such/path"); !errors.Is(err, fsapi.ENOENT) {
				t.Fatalf("missing: %v", err)
			}
			if _, err := root.Stat(""); !errors.Is(err, fsapi.ENOENT) {
				t.Fatalf("empty path: %v", err)
			}
			// Second stat of the same path must be a pure cache hit.
			before := k.Stats().FSLookups
			if _, err := root.Stat("/usr/include/sys/types.h"); err != nil {
				t.Fatal(err)
			}
			if k.Stats().FSLookups != before {
				t.Fatal("warm stat reached the low-level FS")
			}
		})
	}
}

func TestPathOddities(t *testing.T) {
	_, root := newKernel(t, Config{})
	for _, p := range []string{
		"/usr//include//sys/types.h",
		"/usr/./include/./sys/types.h",
		"/usr/include/../include/sys/types.h",
		"//usr/include/sys/types.h",
	} {
		if _, err := root.Stat(p); err != nil {
			t.Fatalf("stat %q: %v", p, err)
		}
	}
	// Trailing slash on a file is ENOTDIR; on a dir it's fine.
	if _, err := root.Stat("/etc/passwd/"); !errors.Is(err, fsapi.ENOTDIR) {
		t.Fatalf("trailing slash on file: %v", err)
	}
	if _, err := root.Stat("/etc/"); err != nil {
		t.Fatalf("trailing slash on dir: %v", err)
	}
	if _, err := root.Stat("/"); err != nil {
		t.Fatalf("root stat: %v", err)
	}
	// Dot-dot above root stays at root.
	if _, err := root.Stat("/../../etc/passwd"); err != nil {
		t.Fatalf("dotdot above root: %v", err)
	}
}

func TestNegativeDentries(t *testing.T) {
	k, root := newKernel(t, Config{})
	if _, err := root.Stat("/etc/shadow"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal(err)
	}
	fsBefore := k.Stats().FSLookups
	negBefore := k.Stats().NegativeHits
	if _, err := root.Stat("/etc/shadow"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal(err)
	}
	if k.Stats().FSLookups != fsBefore {
		t.Fatal("repeated miss reached the FS despite negative dentry")
	}
	if k.Stats().NegativeHits != negBefore+1 {
		t.Fatal("negative hit not counted")
	}
	// Creating the file positivizes the negative dentry.
	if err := root.Create("/etc/shadow", 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/etc/shadow"); err != nil {
		t.Fatalf("stat after create over negative: %v", err)
	}
}

func TestDisableNegatives(t *testing.T) {
	k, root := newKernel(t, Config{DisableNegatives: true})
	root.Stat("/etc/shadow")
	before := k.Stats().FSLookups
	root.Stat("/etc/shadow")
	if k.Stats().FSLookups != before+1 {
		t.Fatal("negative caching still active")
	}
}

func TestDACPermissions(t *testing.T) {
	k, root := newKernel(t, Config{})
	a := alice(k)
	b := bob(k)
	// Alice reads her own file but not Bob's.
	if _, err := a.Stat("/home/alice/notes.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stat("/home/bob/secret/key"); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("prefix check failed to deny alice: %v", err)
	}
	if _, err := b.Stat("/home/bob/secret/key"); err != nil {
		t.Fatalf("bob denied his own file: %v", err)
	}
	// Root passes everywhere.
	if _, err := root.Stat("/home/bob/secret/key"); err != nil {
		t.Fatal(err)
	}
	// Write permission checks on open.
	f, err := a.Open("/etc/passwd", O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := a.Open("/etc/passwd", O_WRONLY, 0); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("write open of root-owned file: %v", err)
	}
}

func TestChmodChangesAccess(t *testing.T) {
	k, root := newKernel(t, Config{})
	a := alice(k)
	if _, err := a.Stat("/home/bob/secret/key"); !errors.Is(err, fsapi.EACCES) {
		t.Fatal("precondition failed")
	}
	if err := root.Chmod("/home/bob", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Chmod("/home/bob/secret", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Chmod("/home/bob/secret/key", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stat("/home/bob/secret/key"); err != nil {
		t.Fatalf("after chmod: %v", err)
	}
	// And back: access revoked again (slowpath rechecks every time).
	if err := root.Chmod("/home/bob", 0o700); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stat("/home/bob/secret/key"); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("after revoke: %v", err)
	}
}

func TestStickyBitDelete(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Create("/tmp/alice-file", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/tmp/alice-file", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	b := bob(k)
	if err := b.Unlink("/tmp/alice-file"); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("sticky dir let bob delete alice's file: %v", err)
	}
	a := alice(k)
	if err := a.Unlink("/tmp/alice-file"); err != nil {
		t.Fatalf("owner delete in sticky dir: %v", err)
	}
}

func TestSymlinks(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Symlink("/usr/include", "/inc"); err != nil {
		t.Fatal(err)
	}
	if err := root.Symlink("sys/types.h", "/usr/include/th"); err != nil {
		t.Fatal(err)
	}
	// Absolute link mid-path.
	if _, err := root.Stat("/inc/sys/types.h"); err != nil {
		t.Fatalf("through absolute link: %v", err)
	}
	// Relative link as final component.
	ni, err := root.Stat("/usr/include/th")
	if err != nil || !ni.Mode.IsRegular() {
		t.Fatalf("through relative link: %+v %v", ni, err)
	}
	// Lstat sees the link itself.
	li, err := root.Lstat("/usr/include/th")
	if err != nil || !li.Mode.IsSymlink() {
		t.Fatalf("lstat: %+v %v", li, err)
	}
	// Readlink.
	target, err := root.Readlink("/inc")
	if err != nil || target != "/usr/include" {
		t.Fatalf("readlink: %q %v", target, err)
	}
	if _, err := root.Readlink("/etc/passwd"); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("readlink on file: %v", err)
	}
	// Dangling link: lstat ok, stat ENOENT.
	if err := root.Symlink("/nowhere", "/dang"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lstat("/dang"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/dang"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("dangling stat: %v", err)
	}
	// Loop: ELOOP.
	if err := root.Symlink("/loopB", "/loopA"); err != nil {
		t.Fatal(err)
	}
	if err := root.Symlink("/loopA", "/loopB"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/loopA"); !errors.Is(err, fsapi.ELOOP) {
		t.Fatalf("loop: %v", err)
	}
	_ = k
}

func TestSymlinkPermissionOnTargetPath(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Symlink("/home/bob/secret/key", "/pub-link"); err != nil {
		t.Fatal(err)
	}
	a := alice(k)
	// The link is world-followable but the target path's prefix denies.
	if _, err := a.Stat("/pub-link"); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("symlink bypassed prefix check: %v", err)
	}
}

func TestChdirRelativeAndGetcwd(t *testing.T) {
	k, root := newKernel(t, Config{})
	a := alice(k)
	if err := a.Chdir("/home/alice"); err != nil {
		t.Fatal(err)
	}
	if got := a.Getcwd(); got != "/home/alice" {
		t.Fatalf("getcwd: %q", got)
	}
	if _, err := a.Stat("notes.txt"); err != nil {
		t.Fatalf("relative stat: %v", err)
	}
	if _, err := a.Stat("projects/code.go"); err != nil {
		t.Fatalf("relative nested: %v", err)
	}
	if _, err := a.Stat("../alice/notes.txt"); err != nil {
		t.Fatalf("relative dotdot: %v", err)
	}
	if err := a.Chdir("projects"); err != nil {
		t.Fatal(err)
	}
	if got := a.Getcwd(); got != "/home/alice/projects" {
		t.Fatalf("getcwd after relative chdir: %q", got)
	}
	_ = root
}

func TestDirectoryReferenceSemantics(t *testing.T) {
	// cd into a directory, revoke search permission on an ancestor: the
	// task must still work relative to its cwd (§3.2 Directory
	// References), while absolute access is denied.
	k, root := newKernel(t, Config{})
	a := alice(k)
	if err := root.Chmod("/home/alice/projects", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := a.Chdir("/home/alice/projects"); err != nil {
		t.Fatal(err)
	}
	if err := root.Chmod("/home", 0o000); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stat("/home/alice/projects/code.go"); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("absolute path after revoke: %v", err)
	}
	if _, err := a.Stat("code.go"); err != nil {
		t.Fatalf("relative path after revoke must keep working: %v", err)
	}
}

func TestChrootBarrier(t *testing.T) {
	k, root := newKernel(t, Config{})
	jail := k.NewTask(cred.Root())
	if err := jail.Chroot("/home/alice"); err != nil {
		t.Fatal(err)
	}
	if err := jail.Chdir("/"); err != nil {
		t.Fatal(err)
	}
	if _, err := jail.Stat("/notes.txt"); err != nil {
		t.Fatalf("stat inside jail: %v", err)
	}
	if _, err := jail.Stat("/etc/passwd"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("jail leaked: %v", err)
	}
	// Dot-dot cannot escape.
	if _, err := jail.Stat("/../../etc/passwd"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("dotdot escaped chroot: %v", err)
	}
	_ = root
}

func TestUnlinkRenameCacheCoherence(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Unlink("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/etc/passwd"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal("unlinked file still visible")
	}
	if err := root.Create("/etc/newfile", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := root.Rename("/etc/newfile", "/etc/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/etc/newfile"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal("old name visible after rename")
	}
	if _, err := root.Stat("/etc/renamed"); err != nil {
		t.Fatalf("new name: %v", err)
	}
	// Rename a directory: cached children must resolve under the new path.
	if _, err := root.Stat("/home/alice/projects/code.go"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rename("/home/alice/projects", "/home/alice/src"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/home/alice/src/code.go"); err != nil {
		t.Fatalf("child under renamed dir: %v", err)
	}
	if _, err := root.Stat("/home/alice/projects/code.go"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("old dir path still resolves: %v", err)
	}
	// Rename onto an existing file replaces it.
	if err := root.Create("/etc/a", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := root.Create("/etc/b", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := root.Rename("/etc/a", "/etc/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/etc/a"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal("source survives replace-rename")
	}
	// Renaming a directory into its own subtree is rejected.
	if err := root.Mkdir("/d1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/d1/d2", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Rename("/d1", "/d1/d2/oops"); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("rename into own subtree: %v", err)
	}
	_ = k
}

func TestAggressiveNegativesOnUnlinkAndRename(t *testing.T) {
	k, root := newKernel(t, Config{AggressiveNegatives: true})
	if err := root.Unlink("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	before := k.Stats().FSLookups
	if _, err := root.Stat("/etc/passwd"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal(err)
	}
	if k.Stats().FSLookups != before {
		t.Fatal("unlink did not leave a negative dentry")
	}
	// Rename leaves a negative at the old path.
	if err := root.Rename("/home/alice/notes.txt", "/home/alice/notes.bak"); err != nil {
		t.Fatal(err)
	}
	before = k.Stats().FSLookups
	if _, err := root.Stat("/home/alice/notes.txt"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal(err)
	}
	if k.Stats().FSLookups != before {
		t.Fatal("rename did not leave a negative dentry at the old path")
	}
}

func TestHardLinks(t *testing.T) {
	_, root := newKernel(t, Config{})
	if err := root.Link("/etc/passwd", "/etc/passwd2"); err != nil {
		t.Fatal(err)
	}
	n1, _ := root.Stat("/etc/passwd")
	n2, _ := root.Stat("/etc/passwd2")
	if n1.ID != n2.ID {
		t.Fatal("hard link has different inode")
	}
	if n1.Nlink != 2 {
		t.Fatalf("nlink %d, want 2", n1.Nlink)
	}
	if err := root.Unlink("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	n2, err := root.Stat("/etc/passwd2")
	if err != nil || n2.Nlink != 1 {
		t.Fatalf("after unlinking one name: %+v %v", n2, err)
	}
	if err := root.Link("/etc", "/etclink"); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("hard link to dir: %v", err)
	}
}

func TestFileIO(t *testing.T) {
	_, root := newKernel(t, Config{})
	f, err := root.Open("/etc/passwd", O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("root:x:0:0\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := f.Read(buf)
	if err != nil || string(buf[:n]) != "root:x:0:0\n" {
		t.Fatalf("read back %q %v", buf[:n], err)
	}
	ni, _ := f.Stat()
	if ni.Size != 11 {
		t.Fatalf("size %d", ni.Size)
	}
	// O_APPEND.
	fa, err := root.Open("/etc/passwd", O_WRONLY|O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fa.Write([]byte("bin:x:1:1\n"))
	fa.Close()
	ni, _ = root.Stat("/etc/passwd")
	if ni.Size != 21 {
		t.Fatalf("append size %d", ni.Size)
	}
	// O_TRUNC.
	ft, err := root.Open("/etc/passwd", O_WRONLY|O_TRUNC, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft.Close()
	ni, _ = root.Stat("/etc/passwd")
	if ni.Size != 0 {
		t.Fatalf("trunc size %d", ni.Size)
	}
}

func TestOpenFlagSemantics(t *testing.T) {
	_, root := newKernel(t, Config{})
	if _, err := root.Open("/etc/passwd", O_CREAT|O_EXCL|O_RDWR, 0o644); !errors.Is(err, fsapi.EEXIST) {
		t.Fatalf("O_EXCL on existing: %v", err)
	}
	if _, err := root.Open("/etc", O_WRONLY, 0); !errors.Is(err, fsapi.EISDIR) {
		t.Fatalf("write open of dir: %v", err)
	}
	if _, err := root.Open("/etc/passwd", O_RDONLY|O_DIRECTORY, 0); !errors.Is(err, fsapi.ENOTDIR) {
		t.Fatalf("O_DIRECTORY on file: %v", err)
	}
	if err := root.Symlink("/etc/passwd", "/plink"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Open("/plink", O_RDONLY|O_NOFOLLOW, 0); !errors.Is(err, fsapi.ELOOP) {
		t.Fatalf("O_NOFOLLOW on symlink: %v", err)
	}
	f, err := root.Open("/etc/fresh", O_CREAT|O_RDWR, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	ni, _ := root.Stat("/etc/fresh")
	if ni.Mode.Perm() != 0o600 {
		t.Fatalf("create mode %o", ni.Mode.Perm())
	}
}

func TestUnlinkOpenFile(t *testing.T) {
	_, root := newKernel(t, Config{})
	f, err := root.Open("/etc/passwd", O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := root.Unlink("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	// The handle still reads (inode pinned even though the name is gone).
	buf := make([]byte, 4)
	if n, err := f.ReadAt(buf, 0); err != nil || n != 4 {
		t.Fatalf("read after unlink: %d %v", n, err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	_, root := newKernel(t, Config{})
	if err := root.Rmdir("/home/alice"); !errors.Is(err, fsapi.ENOTEMPTY) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := root.Rmdir("/etc/passwd"); !errors.Is(err, fsapi.ENOTDIR) {
		t.Fatalf("rmdir file: %v", err)
	}
	if err := root.Mkdir("/gone", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/gone"); !errors.Is(err, fsapi.ENOENT) {
		t.Fatal("rmdired dir visible")
	}
}

func TestReadDirAndAtOps(t *testing.T) {
	_, root := newKernel(t, Config{})
	d, err := root.Open("/usr/include", O_RDONLY|O_DIRECTORY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ents, err := d.ReadDirAll()
	if err != nil || len(ents) != 1 || ents[0].Name != "sys" {
		t.Fatalf("readdir: %v %v", ents, err)
	}
	// fstatat relative to the handle.
	ni, err := root.StatAt(d, "sys/types.h", true)
	if err != nil || !ni.Mode.IsRegular() {
		t.Fatalf("statat: %+v %v", ni, err)
	}
	if _, err := root.StatAt(d, "missing", true); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("statat missing: %v", err)
	}
}

func TestLRUShrinkAndCapacity(t *testing.T) {
	k, root := newKernel(t, Config{CacheCapacity: 64})
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/tmp/f%03d", i)
		if err := root.Create(p, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if n := k.DentryCount(); n > 80 {
		t.Fatalf("cache grew to %d despite capacity 64", n)
	}
	// Everything still resolvable (just slower).
	if _, err := root.Stat("/tmp/f000"); err != nil {
		t.Fatalf("evicted path unresolvable: %v", err)
	}
	if k.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestDropCaches(t *testing.T) {
	k, root := newKernel(t, Config{})
	root.Stat("/usr/include/sys/types.h")
	before := k.DentryCount()
	n := k.DropCaches()
	if n == 0 || k.DentryCount() >= before {
		t.Fatalf("dropcaches evicted %d; count %d -> %d", n, before, k.DentryCount())
	}
	// Roots and pinned dirs survive; resolution still works.
	if _, err := root.Stat("/usr/include/sys/types.h"); err != nil {
		t.Fatal(err)
	}
}

func TestHashChainStats(t *testing.T) {
	k, root := newKernel(t, Config{HashBuckets: 64})
	for i := 0; i < 100; i++ {
		root.Create(fmt.Sprintf("/tmp/c%d", i), 0o644)
	}
	empty, one, two, more := k.ChainStats()
	if empty+one+two+more != 64 {
		t.Fatalf("bucket accounting: %d %d %d %d", empty, one, two, more)
	}
	if one+two+more == 0 {
		t.Fatal("no chains populated")
	}
}
