package vfs

import (
	"fmt"
	"sync"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/slab"
)

// TestStressSlotRecycleABA hammers the generation-tagged handle scheme:
// eight walkers capture SelfRefs for dentries they resolve while a churner
// unlinks and re-creates the same names, and ReclaimAll forces the retired
// slots back onto the free-list so the re-created dentries land in the
// same arena slots. A stale captured ref must then either fail to resolve
// (generation bumped) or resolve to the exact dentry it was taken from —
// never to the slot's new tenant. Runs under `make race`.
func TestStressSlotRecycleABA(t *testing.T) {
	// DisableNegatives so Unlink kills the dentry (the default flips it
	// negative in place, which never retires the slot — no ABA pressure).
	k, root := newKernel(t, Config{CacheCapacity: 48, DisableNegatives: true})
	const nNames = 8
	for i := 0; i < nNames; i++ {
		if err := root.Create(fmt.Sprintf("/tmp/aba%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	iters := 4000
	if testing.Short() {
		iters = 400
	}

	type capture struct {
		r  slab.Ref
		id uint64
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Walkers: capture (ref, id) pairs inside a pinned epoch section, then
	// re-validate the oldest capture once it has had time to be recycled.
	// Validation is pinned too: if DentryFromRef resolves, the slot cannot
	// be reclaimed-and-reallocated under us, so the identity fields are
	// stable for the comparison.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			task := k.NewTask(cred.Root())
			var caps []capture
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := fmt.Sprintf("/tmp/aba%d", (seed+i)%nNames)
				ep := k.gate.Enter()
				if ref, err := task.Walk(p, 0); err == nil {
					caps = append(caps, capture{ref.D.SelfRef(), ref.D.ID()})
				}
				k.gate.Exit(ep)
				if len(caps) > 32 {
					c := caps[0]
					caps = caps[1:]
					ep := k.gate.Enter()
					if d := k.DentryFromRef(c.r); d != nil {
						if d.SelfRef() != c.r || d.ID() != c.id {
							panic(fmt.Sprintf("stale ref %+v resolved to a different tenant: id %d, want %d",
								c.r, d.ID(), c.id))
						}
					}
					k.gate.Exit(ep)
				}
			}
		}(g)
	}

	// Churner: unlink/re-create the same names so retired slots are
	// recycled for new dentries with the same (parent, name) identity —
	// the classic ABA shape. ReclaimAll forces the limbo drain + grace
	// advance instead of waiting for incidental reapSome batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		task := k.NewTask(cred.Root())
		for i := 0; i < iters; i++ {
			p := fmt.Sprintf("/tmp/aba%d", i%nNames)
			task.Unlink(p)
			task.Create(p, 0o644)
			if i%16 == 0 {
				k.ReclaimAll()
			}
		}
		close(stop)
	}()

	wg.Wait()
	k.ReclaimAll()

	// The churner finished on Create, so every name must resolve.
	for i := 0; i < nNames; i++ {
		if _, err := root.Stat(fmt.Sprintf("/tmp/aba%d", i)); err != nil {
			t.Fatalf("post-stress stat aba%d: %v", i, err)
		}
	}
	// The test is vacuous unless slots actually cycled through the
	// free-list while walkers held stale refs.
	dst, _, _, _ := k.MemStats()
	if dst.Reclaimed == 0 {
		t.Fatal("no dentry slots were recycled; ABA path never exercised")
	}
	if _, msgs := k.CheckSlabLiveness(16); len(msgs) != 0 {
		t.Fatalf("slab liveness violated after stress: %v", msgs)
	}
}
