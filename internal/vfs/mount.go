package vfs

import (
	"sync"
	"sync/atomic"
)

// MountFlags carry the permission-relevant mount options the fastpath must
// be able to find for any dentry (§4.3).
type MountFlags uint32

const (
	// MntReadOnly rejects writes through this mount.
	MntReadOnly MountFlags = 1 << iota
	// MntNoSuid ignores setuid bits under this mount.
	MntNoSuid
	// MntNoExec denies execute permission under this mount.
	MntNoExec
)

// Mount is one vfsmount: a superblock attached at a mountpoint. Bind
// mounts are Mounts whose root is an arbitrary dentry of an existing
// superblock — the "mount alias" case of §4.3.
type Mount struct {
	id    uint64
	sb    *Super
	root  *Dentry // where this mount's subtree is rooted within sb
	flags MountFlags

	parent     *Mount  // mount containing the mountpoint (nil for ns root)
	mountpoint *Dentry // dentry in parent this mount covers
}

// ID returns the mount's unique identity.
func (m *Mount) ID() uint64 { return m.id }

// Super returns the mounted superblock.
func (m *Mount) Super() *Super { return m.sb }

// Root returns the dentry the mount is rooted at.
func (m *Mount) Root() *Dentry { return m.root }

// Flags returns the mount options.
func (m *Mount) Flags() MountFlags { return m.flags }

// Mountpoint returns the covered dentry in the parent mount (nil for the
// namespace root).
func (m *Mount) Mountpoint() *Dentry { return m.mountpoint }

// ParentMount returns the mount containing the mountpoint.
func (m *Mount) ParentMount() *Mount { return m.parent }

// PathRef is the (mount, dentry) pair that identifies a location — what
// Linux calls a struct path.
type PathRef struct {
	Mnt *Mount
	D   *Dentry
}

// mkey indexes the per-namespace mount table.
type mkey struct {
	parentMount uint64
	dentry      uint64
}

// Namespace is a mount namespace (§4.3): a private mount table, and —
// through fastData — a private direct lookup hash table owned by the
// installed Hooks.
type Namespace struct {
	id uint64

	mu     sync.RWMutex
	mounts map[mkey]*Mount
	root   *Mount

	// fastData holds the namespace-private DLHT installed by the hooks.
	fastData atomic.Value // any
}

// ID returns the namespace identity.
func (ns *Namespace) ID() uint64 { return ns.id }

// RootMount returns the namespace's root mount.
func (ns *Namespace) RootMount() *Mount {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.root
}

// FastLoad returns the hook-owned namespace-private state.
func (ns *Namespace) FastLoad() any { return ns.fastData.Load() }

// FastStoreIfAbsent installs v if no state is attached yet, returning the
// attached state.
func (ns *Namespace) FastStoreIfAbsent(v any) any {
	if cur := ns.fastData.Load(); cur != nil {
		return cur
	}
	if ns.fastData.CompareAndSwap(nil, v) {
		return v
	}
	return ns.fastData.Load()
}

// MountAt returns the mount covering dentry d in mount m within this
// namespace, or nil (exported for the fastpath hooks).
func (ns *Namespace) MountAt(m *Mount, d *Dentry) *Mount { return ns.mountAt(m, d) }

// mountAt returns the mount covering dentry d in mount m, or nil.
func (ns *Namespace) mountAt(m *Mount, d *Dentry) *Mount {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.mounts[mkey{m.id, d.id}]
}

// addMount installs child at (parent mount, mountpoint dentry).
func (ns *Namespace) addMount(child *Mount) {
	ns.mu.Lock()
	ns.mounts[mkey{child.parent.id, child.mountpoint.id}] = child
	ns.mu.Unlock()
	child.mountpoint.setFlags(DMounted)
}

// removeMount detaches child from the namespace. It does not clear
// DMounted on the mountpoint (other namespaces may still mount there);
// the flag is a hint, and a table probe resolves the truth.
func (ns *Namespace) removeMount(child *Mount) bool {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	k := mkey{child.parent.id, child.mountpoint.id}
	if ns.mounts[k] != child {
		return false
	}
	delete(ns.mounts, k)
	return true
}

// hasMountsUnder reports whether any mount in the namespace sits on m
// (i.e., m is some mount's parent) — umount must refuse busy mounts.
func (ns *Namespace) hasMountsUnder(m *Mount) bool {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	for _, child := range ns.mounts {
		if child.parent == m {
			return true
		}
	}
	return false
}

// clone duplicates the namespace's mount tree into a new namespace with
// fresh Mount identities (what CLONE_NEWNS does). The dentry trees are
// shared — exactly the aliasing situation §4.3's per-namespace DLHTs and
// single-DLHT-membership rule address.
func (ns *Namespace) clone(idGen func() uint64) *Namespace {
	ns.mu.RLock()
	defer ns.mu.RUnlock()

	out := &Namespace{
		id:     idGen(),
		mounts: make(map[mkey]*Mount, len(ns.mounts)),
	}
	// Map old mounts to their copies, walking parents first.
	copies := make(map[*Mount]*Mount, len(ns.mounts)+1)
	var copyMount func(m *Mount) *Mount
	copyMount = func(m *Mount) *Mount {
		if c, ok := copies[m]; ok {
			return c
		}
		c := &Mount{
			id:         idGen(),
			sb:         m.sb,
			root:       m.root,
			flags:      m.flags,
			mountpoint: m.mountpoint,
		}
		if m.parent != nil {
			c.parent = copyMount(m.parent)
		}
		copies[m] = c
		return c
	}
	out.root = copyMount(ns.root)
	for _, child := range ns.mounts {
		c := copyMount(child)
		out.mounts[mkey{c.parent.id, c.mountpoint.id}] = c
	}
	return out
}
