package vfs

import (
	"errors"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
)

// TestRecycleResetsTenantState covers the pooled-reuse contract: Recycle
// must return a task to its newborn shape — initial namespace, root and
// cwd at "/", the new credential installed, and the walk-resume shortcut
// scratch cleared so a recycled task cannot hash-resume from the previous
// tenant's prefix.
func TestRecycleResetsTenantState(t *testing.T) {
	k, root := newKernel(t, Config{})
	defer root.Exit()

	a := alice(k)
	if err := a.Chdir("/home/alice/projects"); err != nil {
		t.Fatal(err)
	}
	type fakeResume struct{ path string }
	a.SetShortcutScratch(&fakeResume{path: "/home/alice/projects"})
	if a.ShortcutScratch() == nil {
		t.Fatal("scratch did not stick")
	}

	bobCred := cred.New(1001, 1001, nil, "")
	a.Recycle(bobCred)

	if got := a.ShortcutScratch(); got != nil {
		t.Fatalf("shortcut scratch survived recycle: %#v", got)
	}
	if got := a.Getcwd(); got != "/" {
		t.Fatalf("cwd after recycle = %q, want /", got)
	}
	if a.Cred() != bobCred {
		t.Fatalf("cred after recycle = %+v", a.Cred())
	}

	// The recycled task operates under the NEW credential: bob's 0700
	// subtree opens, alice's view of it would not.
	if _, err := a.Stat("/home/bob/secret/key"); err != nil {
		t.Fatalf("recycled task denied as bob: %v", err)
	}

	// Recycle again to a low-privilege cred: bob's subtree must now deny.
	a.Recycle(cred.New(1000, 1000, nil, ""))
	if _, err := a.Stat("/home/bob/secret/key"); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("second recycle kept stale privilege: %v", err)
	}
	if got := a.ShortcutScratch(); got != nil {
		t.Fatalf("scratch survived second recycle: %#v", got)
	}
	a.Exit() // refcounts must balance after recycles (lru_test audits pins)
}

// TestRecycleLeavesPrivateNamespace ensures a recycled task drops back to
// the initial mount namespace even after UnshareNamespace.
func TestRecycleLeavesPrivateNamespace(t *testing.T) {
	k, root := newKernel(t, Config{})
	defer root.Exit()

	tk := k.NewTask(cred.Root())
	priv := tk.UnshareNamespace()
	if tk.Namespace() != priv {
		t.Fatal("unshare did not install the private namespace")
	}
	tk.Recycle(cred.Root())
	if tk.Namespace() == priv {
		t.Fatal("recycled task kept the previous tenant's namespace")
	}
	if _, err := tk.Stat("/etc/passwd"); err != nil {
		t.Fatalf("stat after recycle: %v", err)
	}
	tk.Exit()
}
