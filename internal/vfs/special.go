package vfs

// Helpers for the fastpath hooks (internal/core) to materialize the §4.2
// and §5.2 special dentry kinds. They are ordinary cache citizens (LRU,
// parent child maps, hook state) but only enter the (parent, name) hash
// table when the slow walk could legitimately probe for them.

// AddSpecialNegative installs a negative dentry named name under parent.
// When parent is itself negative or a non-directory, the child is a "deep"
// negative (§5.2) and stays out of the slow-walk hash table (the slow walk
// stops at parent before ever probing below it). notDir marks an ENOTDIR
// failure dentry. Returns the installed dentry (an existing one if the
// path raced).
func (k *Kernel) AddSpecialNegative(parent *Dentry, name string, notDir bool) *Dentry {
	if parent.IsDead() {
		return nil
	}
	parent.mu.Lock()
	if cur, ok := parent.children[name]; ok && !cur.IsDead() {
		parent.mu.Unlock()
		return cur
	}
	parent.mu.Unlock()

	deep := parent.IsNegative() || !parent.IsDir()

	k.cacheMutBegin()
	defer k.cacheMutEnd()
	d := k.newDentry(parent.sb, parent, name)
	d.setFlags(DNegative)
	if deep {
		d.setFlags(DDeepNegative)
	}
	if notDir {
		d.setFlags(DNotDir)
	}
	if k.hooks != nil {
		d.fast = k.hooks.NewDentry(d)
	}
	k.lru.add(d)
	return k.installDedup2(parent, name, d, !deep)
}

// AddAlias installs a symlink-alias dentry (§4.2) named name under parent
// (a symlink dentry or another alias), redirecting to target. Aliases
// never enter the slow-walk hash table: the slow walk resolves symlinks
// before probing under them.
func (k *Kernel) AddAlias(parent *Dentry, name string, target *Dentry) *Dentry {
	if parent.IsDead() || target == nil || target.IsDead() {
		return nil
	}
	parent.mu.Lock()
	if cur, ok := parent.children[name]; ok && !cur.IsDead() {
		parent.mu.Unlock()
		if cur.Flags()&DAlias != 0 {
			// Refresh the redirect in case the target dentry changed.
			cur.setTarget(target)
			return cur
		}
		return cur
	}
	parent.mu.Unlock()

	k.cacheMutBegin()
	defer k.cacheMutEnd()
	d := k.newDentry(parent.sb, parent, name)
	d.setFlags(DAlias)
	d.setTarget(target)
	if k.hooks != nil {
		d.fast = k.hooks.NewDentry(d)
	}
	k.lru.add(d)
	return k.installDedup2(parent, name, d, false)
}

// installDedup2 is installDedup with control over hash table membership.
func (k *Kernel) installDedup2(parent *Dentry, name string, d *Dentry, inTable bool) *Dentry {
	parent.mu.Lock()
	if cur, ok := parent.children[name]; ok && !cur.IsDead() {
		parent.mu.Unlock()
		k.discardDentry(d)
		return cur
	}
	if parent.children == nil {
		parent.children = make(map[string]*Dentry, 4)
	}
	parent.children[name] = d
	parent.listValid = false
	parent.mu.Unlock()
	parent.nkids.Add(1)
	if inTable {
		k.table.insert(parent.id, name, d)
	}
	k.maybeShrink()
	return d
}
