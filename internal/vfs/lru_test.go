package vfs

import (
	"fmt"
	"testing"

	"dircache/internal/slab"
)

// newTestLRU builds a standalone lruList over its own dentry arena.
func newTestLRU() *lruList {
	l := &lruList{}
	l.arena = slab.New[Dentry](slab.NewGate(), slab.Options{})
	return l
}

// lruDentry fabricates a bare dentry with just the fields the LRU reads
// (id, self, refs, nkids, lastUsed), carved from the list's arena so its
// handle resolves.
func lruDentry(l *lruList, id uint64) *Dentry {
	ref, d := l.arena.Alloc()
	d.reset(id, ref, nil)
	d.pn.Store(&parentName{})
	return d
}

// TestLRUVictimsLeafOnly: eviction is bottom-up — a dentry with cached
// children is never selected, and becomes evictable once its children are
// gone (nkids drops to zero).
func TestLRUVictimsLeafOnly(t *testing.T) {
	l := newTestLRU()
	parent := lruDentry(l, 1)
	child := lruDentry(l, 2)
	parent.nkids.Store(1)
	l.add(parent)
	l.add(child)

	got := l.victims(10)
	if len(got) != 1 || got[0] != child {
		t.Fatalf("victims with live child: got %d victims, want only the leaf", len(got))
	}
	if l.Len() != 1 {
		t.Fatalf("count after leaf eviction: %d", l.Len())
	}

	// Child gone: the parent is a leaf now and falls too.
	parent.nkids.Store(0)
	got = l.victims(10)
	if len(got) != 1 || got[0] != parent {
		t.Fatalf("victims after child evicted: %v", got)
	}
	if l.Len() != 0 {
		t.Fatalf("count after full eviction: %d", l.Len())
	}
}

// TestLRUVictimsPinned: referenced dentries (open files, cwd/root refs)
// survive arbitrarily aggressive shrinking.
func TestLRUVictimsPinned(t *testing.T) {
	l := newTestLRU()
	pinned := lruDentry(l, 1)
	pinned.refs.Store(1)
	loose := lruDentry(l, 2)
	l.add(pinned)
	l.add(loose)

	got := l.victims(10)
	if len(got) != 1 || got[0] != loose {
		t.Fatalf("pinned dentry evicted: %v", got)
	}
	pinned.refs.Store(0)
	if got = l.victims(10); len(got) != 1 || got[0] != pinned {
		t.Fatalf("unpinned dentry not evicted: %v", got)
	}
}

// TestLRUVictimsColdestFirst: victims leave in generation-stamp order, and
// touch refreshes a dentry's stamp so recently hit entries outlive stale
// ones even though hits never reorder any list.
func TestLRUVictimsColdestFirst(t *testing.T) {
	l := newTestLRU()
	a, b, c := lruDentry(l, 1), lruDentry(l, 2), lruDentry(l, 3)
	l.add(a) // stamp 1
	l.add(b) // stamp 2
	l.add(c) // stamp 3
	l.touch(a)

	got := l.victims(1)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("coldest victim: got %v, want b (a was touched)", got)
	}
	got = l.victims(2)
	if len(got) != 2 || got[0] != a || got[1] != c {
		// a (stamp 3) ties with c (stamp 3); ties break by id.
		t.Fatalf("remaining victims: %v", got)
	}
}

// TestLRUEpochPerEviction: the eviction epoch advances exactly once per
// eviction — both via victims() and via remove() — so §5.1 DIR_COMPLETE
// bookkeeping can detect "a child may have been evicted while I was
// listing this directory". A remove() of an already-gone dentry must not
// advance it.
func TestLRUEpochPerEviction(t *testing.T) {
	l := newTestLRU()
	var ds []*Dentry
	for i := 0; i < 8; i++ {
		d := lruDentry(l, uint64(i + 1))
		ds = append(ds, d)
		l.add(d)
	}
	e0 := l.Epoch()
	got := l.victims(3)
	if len(got) != 3 {
		t.Fatalf("victims: %d", len(got))
	}
	if e := l.Epoch(); e != e0+3 {
		t.Fatalf("epoch after 3 evictions: %d -> %d", e0, e)
	}
	l.remove(ds[7])
	if e := l.Epoch(); e != e0+4 {
		t.Fatalf("epoch after remove: %d, want %d", e, e0+4)
	}
	l.remove(ds[7]) // double remove: no-op
	if e := l.Epoch(); e != e0+4 {
		t.Fatalf("epoch after duplicate remove: %d, want %d", e, e0+4)
	}
}

// TestLRUKernelEpochMatchesEvictions ties the epoch invariant to the real
// kernel shrinker: EvictionEpoch advances by exactly the number of
// dentries Shrink reports.
func TestLRUKernelEpochMatchesEvictions(t *testing.T) {
	k, root := newKernel(t, Config{})
	for i := 0; i < 32; i++ {
		if err := root.Create(fmt.Sprintf("/tmp/e%02d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e0 := k.EvictionEpoch()
	n := k.Shrink(10)
	if n == 0 {
		t.Fatal("nothing evicted")
	}
	if e := k.EvictionEpoch(); e != e0+uint64(n) {
		t.Fatalf("eviction epoch advanced %d for %d evictions", e-e0, n)
	}
	// Bottom-up invariant at the kernel level: every survivor's parent is
	// still cached (not dead).
	k.DropCaches()
	for i := range k.lru.shards {
		sh := &k.lru.shards[i]
		sh.mu.Lock()
		for h, g := range sh.entries {
			d := k.dentries.Resolve(slab.Ref{H: h, G: g})
			if d == nil {
				sh.mu.Unlock()
				t.Fatalf("LRU entry %d does not resolve", h)
			}
			if p := d.Parent(); p != nil && p.IsDead() {
				sh.mu.Unlock()
				t.Fatalf("cached dentry %q has dead parent", d.Name())
			}
		}
		sh.mu.Unlock()
	}
}
