package vfs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dircache/internal/slab"
	"dircache/internal/telemetry"
)

// lruShardCount shards the dentry LRU's membership structures so that
// concurrent allocations and removals do not serialize on one mutex.
// Power of two (shard selection masks the dentry ID).
const lruShardCount = 16

// lruShard holds one slice of the cached-dentry set. Membership in the
// map is the authoritative "is in the LRU" bit; recency lives in each
// dentry's lastUsed stamp, not in any ordering here. Entries are keyed
// by slab handle with the generation as the value, so the LRU holds no
// pointers into the arena: a handle whose generation no longer matches
// is a stale leftover and is discarded on sight.
type lruShard struct {
	mu      sync.Mutex
	entries map[slab.Handle]uint32
	_       [cacheLinePad]byte
}

const cacheLinePad = 64 - 16 // pad past the mutex+map header

// lruList tracks every cached dentry for shrinking under pressure.
//
// The hot path never touches it with a lock: a cache hit stamps the
// dentry's atomic lastUsed generation (lruList.touch — one uncontended
// store) instead of splicing it to the front of a mutex-protected list,
// the classic lazy-LRU trade: perfect recency ordering is given up for a
// lock-free hit path, and victims() recovers an approximate ordering by
// comparing stamps at eviction time. Eviction only considers leaf
// dentries (no cached children) with no pins, preserving the invariant
// that every cached dentry's parents are cached (§2.2) — eviction is
// therefore bottom-up.
type lruList struct {
	shards [lruShardCount]lruShard

	// arena resolves the handle-keyed shard entries back to dentries.
	arena *slab.Arena[Dentry]

	count atomic.Int64

	// clock is the generation source for lastUsed stamps. It advances on
	// allocation and eviction (slow-path events), so a hit only loads it —
	// the line stays shared across cores instead of ping-ponging the way
	// a per-hit increment would.
	clock atomic.Uint64

	// epoch increments on every eviction; directory-completeness
	// bookkeeping uses it to detect "a child may have been evicted while
	// I was reading this directory" (§5.1).
	epoch atomic.Uint64

	// tel points at the owning kernel's telemetry pointer (nil for a
	// zero-value lruList, as used by tests): victim scans are timed into
	// HistEvict when a telemetry subsystem is attached and enabled.
	tel *atomic.Pointer[telemetry.Telemetry]
}

func (l *lruList) shardFor(d *Dentry) *lruShard {
	return &l.shards[d.id&(lruShardCount-1)]
}

func (l *lruList) Len() int { return int(l.count.Load()) }

func (l *lruList) Epoch() uint64 { return l.epoch.Load() }

// add registers d with the current generation.
func (l *lruList) add(d *Dentry) {
	d.lastUsed.Store(l.clock.Add(1))
	sh := l.shardFor(d)
	sh.mu.Lock()
	if sh.entries == nil {
		sh.entries = make(map[slab.Handle]uint32, 32)
	}
	sh.entries[d.self.H] = d.self.G
	sh.mu.Unlock()
	l.count.Add(1)
}

// touch marks d recently used. Called on every cache hit: one atomic load
// of the shared clock plus one store to d's own line, no lock, no RMW.
func (l *lruList) touch(d *Dentry) {
	d.lastUsed.Store(l.clock.Load())
}

// remove detaches d from the LRU (unlink/eviction path).
func (l *lruList) remove(d *Dentry) {
	sh := l.shardFor(d)
	sh.mu.Lock()
	g, ok := sh.entries[d.self.H]
	if ok && g == d.self.G {
		delete(sh.entries, d.self.H)
	} else {
		ok = false
	}
	sh.mu.Unlock()
	if ok {
		l.count.Add(-1)
		l.epoch.Add(1)
	}
}

// victims collects up to n evictable dentries, coldest stamps first:
// unpinned leaves. They are removed from the LRU; the caller completes
// the eviction (table/parent/hook teardown) and must not re-add them.
//
// Selection is two-phase because candidates are gathered per shard: a
// lock-free reader may pin or repopulate a candidate between the scan and
// the removal, so eligibility is re-checked under the shard lock before a
// dentry is actually claimed.
func (l *lruList) victims(n int) []*Dentry {
	if n <= 0 {
		return nil
	}
	var tel *telemetry.Telemetry
	var scanStart time.Time
	if l.tel != nil {
		if tel = l.tel.Load(); tel.On() {
			scanStart = time.Now()
		} else {
			tel = nil
		}
	}
	l.clock.Add(1)
	type candidate struct {
		d     *Dentry
		stamp uint64
	}
	cands := make([]candidate, 0, 64)
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for h, g := range sh.entries {
			d := l.arena.Resolve(slab.Ref{H: h, G: g})
			if d == nil {
				// Stale handle: the slot was retired out from under us
				// (normal kills remove eagerly, so this is an abnormal
				// path). Discard on sight so it cannot leak the count or
				// shadow the shrinker forever. Not an eviction — no
				// dentry disappeared now — so the epoch stays put.
				delete(sh.entries, h)
				l.count.Add(-1)
				continue
			}
			if d.refs.Load() == 0 && d.nkids.Load() == 0 {
				cands = append(cands, candidate{d, d.lastUsed.Load()})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].stamp != cands[j].stamp {
			return cands[i].stamp < cands[j].stamp
		}
		return cands[i].d.id < cands[j].d.id // deterministic tie-break
	})
	var out []*Dentry
	for _, c := range cands {
		if len(out) >= n {
			break
		}
		sh := l.shardFor(c.d)
		sh.mu.Lock()
		g, ok := sh.entries[c.d.self.H]
		if ok && g == c.d.self.G && c.d.refs.Load() == 0 && c.d.nkids.Load() == 0 {
			delete(sh.entries, c.d.self.H)
		} else {
			ok = false
		}
		sh.mu.Unlock()
		if ok {
			l.count.Add(-1)
			l.epoch.Add(1)
			out = append(out, c.d)
		}
	}
	if tel != nil {
		tel.Record(telemetry.HistEvict, time.Since(scanStart))
	}
	return out
}
