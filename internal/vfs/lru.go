package vfs

import "sync"

// lruEntry is an intrusive doubly-linked list node for the dentry LRU.
type lruEntry struct {
	d          *Dentry
	prev, next *lruEntry
}

// lruList is the global dentry LRU used to shrink the cache under
// pressure. Front = most recently used. Eviction only considers leaf
// dentries (no cached children) with no pins, preserving the invariant
// that every cached dentry's parents are cached (§2.2) — eviction is
// therefore bottom-up.
type lruList struct {
	mu         sync.Mutex
	head, tail *lruEntry
	count      int

	// epoch increments on every eviction; directory-completeness
	// bookkeeping uses it to detect "a child may have been evicted while
	// I was reading this directory" (§5.1).
	epoch uint64
}

func (l *lruList) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

func (l *lruList) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// add inserts d at the front.
func (l *lruList) add(d *Dentry) {
	e := &lruEntry{d: d}
	l.mu.Lock()
	d.lruElem = e
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.count++
	l.mu.Unlock()
}

// touch moves d to the front. Called on cache hits; cheap no-op if already
// at front.
func (l *lruList) touch(d *Dentry) {
	l.mu.Lock()
	e := d.lruElem
	if e == nil || l.head == e {
		l.mu.Unlock()
		return
	}
	// unlink
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if l.tail == e {
		l.tail = e.prev
	}
	// push front
	e.prev = nil
	e.next = l.head
	l.head.prev = e
	l.head = e
	l.mu.Unlock()
}

// removeLocked unlinks e. Caller holds l.mu.
func (l *lruList) removeLocked(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if l.head == e {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if l.tail == e {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.count--
}

// remove detaches d from the list (unlink/eviction path).
func (l *lruList) remove(d *Dentry) {
	l.mu.Lock()
	if d.lruElem != nil {
		l.removeLocked(d.lruElem)
		d.lruElem = nil
		l.epoch++
	}
	l.mu.Unlock()
}

// victims collects up to n evictable dentries from the cold end: unpinned
// leaves. They are removed from the list; the caller completes the
// eviction (table/parent/hook teardown) and must not re-add them.
func (l *lruList) victims(n int) []*Dentry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []*Dentry
	e := l.tail
	for e != nil && len(out) < n {
		prev := e.prev
		d := e.d
		if d.refs.Load() == 0 && d.nkids.Load() == 0 {
			l.removeLocked(e)
			d.lruElem = nil
			l.epoch++
			out = append(out, d)
		}
		e = prev
	}
	return out
}
