package vfs

import (
	"errors"

	"dircache/internal/fsapi"
	"dircache/internal/telemetry"
)

// lookupChild resolves one component under parent through the cache,
// consulting the low-level FS on a miss. It returns the positive dentry,
// or ENOENT (installing/charging negative state as configured). The §5.1
// completeness shortcut applies.
func (k *Kernel) lookupChild(parent PathRef, name string) (*Dentry, error) {
	if d := k.table.lookup(parent.D.id, name); d != nil && !d.IsDead() {
		k.stats.cell().cacheHits.Add(1)
		k.lru.touch(d)
		if d.IsNegative() {
			k.stats.cell().negativeHits.Add(1)
			return nil, fsapi.ENOENT
		}
		if d.Flags()&DUnhydrated != 0 {
			if err := k.hydrate(d); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
	// As in walkSlow: DComplete is only authoritative after a locked
	// re-read of the child map, since bulk population installs children
	// before setting the flag.
	if k.cfg.DirCompleteness && parent.D.Flags()&DComplete != 0 &&
		parent.D.child(name) == nil {
		k.stats.cell().completeShort.Add(1)
		return nil, fsapi.ENOENT
	}
	return k.missLookup(parent, name)
}

// FastChildLookup is the cache-only single-component step offered to the
// fastpath: the hash-table probe and §5.1 completeness shortcut of a
// slow-walk component step — including the parent's search-permission
// check, the one permission a memoized prefix check to the parent does
// not cover — but with no FS fallback and no negative installation.
// known=false means the cache cannot answer authoritatively (unhydrated,
// alias, or mounted-on child, a revalidating FS, a racing teardown, or a
// permission failure whose errno the slow walk must produce) and the
// caller falls back. With known=true the result is exactly what a slow
// walk's component step would yield: a live positive child (LRU-touched)
// or ENOENT/ENOTDIR from a negative child (returned alongside the errno
// so the caller can meter it) or, with a nil dentry, from a complete
// directory that lacks the name.
func (k *Kernel) FastChildLookup(t *Task, parent PathRef, name string) (*Dentry, error, bool) {
	pd := parent.D
	if pd == nil || pd.IsDead() {
		return nil, nil, false
	}
	ino := pd.Inode()
	if ino == nil || !ino.Mode().IsDir() {
		return nil, nil, false
	}
	if k.mayLookup(t.Cred(), parent.Mnt, ino) != nil {
		return nil, nil, false
	}
	sc := k.stats.cell()
	if d := k.table.lookup(pd.id, name); d != nil {
		if d.IsDead() || d.sb.caps.Revalidate ||
			d.Flags()&(DAlias|DUnhydrated|DMounted|DInLookup) != 0 {
			return nil, nil, false
		}
		sc.cacheHits.Add(1)
		k.lru.touch(d)
		if d.IsNegative() {
			sc.negativeHits.Add(1)
			if d.Flags()&DNotDir != 0 {
				return d, fsapi.ENOTDIR, true
			}
			return d, fsapi.ENOENT, true
		}
		return d, nil, true
	}
	// As in walkSlow: DComplete is only authoritative after a re-read of
	// the child map (bulk population installs children before setting it).
	if k.cfg.DirCompleteness && pd.Flags()&DComplete != 0 &&
		pd.child(name) == nil {
		sc.completeShort.Add(1)
		return nil, fsapi.ENOENT, true
	}
	return nil, nil, false
}

// childDentryForCreate returns the cached dentry for (parent, name) even if
// negative, or nil when nothing is cached. Used by create-type operations
// to decide between positivizing a negative dentry and allocating afresh.
// An in-lookup placeholder owns the slot until its walk's backend call
// resolves; creating against it would mistake a transient placeholder for
// an existing entry, so we wait for the resolution and re-read.
func (k *Kernel) childDentryForCreate(parent *Dentry, name string) *Dentry {
	if d := k.table.lookup(parent.id, name); d != nil && !d.IsDead() {
		return d
	}
	d := parent.child(name)
	var waited *inLookupState
	for d != nil && d.Flags()&DInLookup != 0 {
		il := d.inLookup
		if il == waited {
			break // resolved but flag leaked (injected test bug)
		}
		waited = il
		<-il.done
		d = parent.child(name)
	}
	if d != nil && d.IsDead() {
		return nil
	}
	return d
}

// positivize flips a negative dentry to positive after a successful
// creation at its path. Per §5.2, negative children are evicted unless the
// new object is a (fresh, hence empty and complete) directory.
func (k *Kernel) positivize(d *Dentry, ino *Inode) {
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	isDir := ino.Mode().IsDir()
	if d.Flags()&DDeepNegative != 0 || d.nkids.Load() > 0 {
		// A deep negative's memoized prefix checks (and those of kept
		// negative children) were earned while ancestors on its path did
		// not exist; the materialized path has real permissions that now
		// gate them — invalidate before the dentry goes positive.
		end := k.beginMutation(d, InvalPerm)
		defer end()
	}
	if d.Flags()&DDeepNegative != 0 {
		// Deep negatives never entered the slow-walk hash table (the
		// walk used to stop above them); as a positive dentry it must be
		// findable there.
		pn := d.pn.Load()
		if pn.parent != nil && k.table.lookup(pn.parent.id, pn.name) != d {
			k.table.insert(pn.parent.id, pn.name, d)
		}
	}
	d.mu.Lock()
	kids := make([]*Dentry, 0, len(d.children))
	if !isDir {
		for _, c := range d.children {
			kids = append(kids, c)
		}
	}
	d.inode.Store(ino)
	d.mu.Unlock()
	for _, c := range kids {
		k.killSubtreeLocked(c)
	}
	d.clearFlags(DNegative | DDeepNegative | DNotDir)
	if k.hooks != nil {
		k.hooks.OnRecycle(d)
	}
	if isDir && k.cfg.DirCompleteness {
		d.setFlags(DComplete)
		if tel := k.journal(); tel != nil {
			tel.Emit(telemetry.JDirComplete, d.ID(), 0, "create")
		}
	}
	if p := d.Parent(); p != nil {
		p.invalidateList()
	}
}

// killDentryKeepComplete removes d (and its cached descendants) from the
// cache without clearing the parent's completeness (used when the removal
// mirrors a real FS change, so the cache remains an exact view).
func (k *Kernel) killDentryKeepComplete(d *Dentry) {
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	k.killSubtreeLocked(d)
}

// killSubtreeLocked tears down d and every cached descendant inside the
// caller's cacheMut bracket: one bracket and one aggregate journal event
// for the whole subtree instead of one per dentry (rm -r teardown used to
// pay a bracket + emission per child). Per-dentry hash-table/LRU removal
// and the OnEvict hook are structurally required and stay. Returns the
// number of dentries killed.
func (k *Kernel) killSubtreeLocked(d *Dentry) int {
	n := k.killRecurse(d)
	k.stats.cell().evictions.Add(int64(n))
	if tel := k.journal(); tel != nil {
		tel.Emit(telemetry.JEvict, d.ID(), int64(n), "teardown")
	}
	return n
}

// killRecurse marks a subtree dead, bottom-up. Only the coherence-
// critical work happens here: the dead flag (lock-free readers discard),
// parent detach (child maps are authoritative), LRU removal (capacity
// accounting), and the OnEvict hook (seq bump for fastpath validity).
// The expensive remainder — hash-chain unlink, DLHT residue, slab-slot
// retirement — is deferred to the sweeper, which is what makes rm -r's
// teardown O(1) per dentry on the operation's critical path.
func (k *Kernel) killRecurse(d *Dentry) int {
	n := 1
	// Deep-negative children first (unlink of a file with cached ENOTDIR
	// children, alias children of a symlink).
	d.EachChild(func(c *Dentry) { n += k.killRecurse(c) })
	pn := d.pn.Load()
	d.setFlags(DDead)
	var pid uint64
	if pn.parent != nil {
		pid = pn.parent.id
		pn.parent.detachChild(pn.name)
	}
	k.lru.remove(d)
	if k.hooks != nil {
		k.hooks.OnEvict(d)
	}
	k.retireLater(d, pid, pn.name, pn.parent != nil)
	return n
}

// discardDentry throws away a freshly allocated dentry that lost an
// install race: it was registered with the LRU but never entered the
// hash table or a child map, so only the LRU entry and the slab slot
// need reclaiming.
func (k *Kernel) discardDentry(d *Dentry) {
	d.setFlags(DDead)
	k.lru.remove(d)
	k.retireLater(d, 0, "", false)
}

// installNewChild creates and wires a positive dentry for a just-created
// node. If a negative dentry is cached at the name it is positivized
// instead.
func (k *Kernel) installNewChild(parent PathRef, name string, info fsapi.NodeInfo) *Dentry {
	sb := parent.D.sb
	ino := sb.inodeFor(info)
	if d := k.childDentryForCreate(parent.D, name); d != nil {
		if d.IsNegative() {
			k.positivize(d, ino)
			return d
		}
		return d // concurrent creation already installed it
	}
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	d := k.allocDentry(sb, parent.D, name, ino)
	if info.Mode.IsDir() && k.cfg.DirCompleteness {
		d.setFlags(DComplete)
	}
	res := k.installDedup(parent.D, name, d)
	if res == d && info.Mode.IsDir() && k.cfg.DirCompleteness {
		if tel := k.journal(); tel != nil {
			tel.Emit(telemetry.JDirComplete, d.ID(), 0, "create")
		}
	}
	return res
}

// Create makes a regular file (open(O_CREAT|O_EXCL) without the handle).
func (t *Task) Create(path string, mode fsapi.Mode) error {
	f, err := t.Open(path, O_CREAT|O_EXCL|O_WRONLY, mode)
	if err != nil {
		return err
	}
	return f.Close()
}

// Mkdir creates a directory. The new directory is born DIR_COMPLETE when
// completeness caching is on (§5.1).
func (t *Task) Mkdir(path string, mode fsapi.Mode) error {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	parent, name, err := t.walkParent(path)
	if err != nil {
		return err
	}
	c := t.Cred()
	if err := k.mayCreate(c, parent.Mnt, parent.D.Inode()); err != nil {
		return err
	}
	if err := mayWriteMnt(parent.Mnt); err != nil {
		return err
	}
	unlock := k.lockBig()
	defer unlock()
	if d := k.childDentryForCreate(parent.D, name); d != nil && !d.IsNegative() {
		return fsapi.EEXIST
	}
	info, err := parent.D.sb.fs.Mkdir(parent.D.Inode().ID(), name, mode, c.UID, c.GID)
	if err != nil {
		return err
	}
	k.installNewChild(parent, name, info)
	k.refreshInode(parent.D)
	return nil
}

// Symlink creates a symbolic link at path pointing to target.
func (t *Task) Symlink(target, path string) error {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	parent, name, err := t.walkParent(path)
	if err != nil {
		return err
	}
	c := t.Cred()
	if err := k.mayCreate(c, parent.Mnt, parent.D.Inode()); err != nil {
		return err
	}
	if err := mayWriteMnt(parent.Mnt); err != nil {
		return err
	}
	unlock := k.lockBig()
	defer unlock()
	if d := k.childDentryForCreate(parent.D, name); d != nil && !d.IsNegative() {
		return fsapi.EEXIST
	}
	info, err := parent.D.sb.fs.Symlink(parent.D.Inode().ID(), name, target, c.UID, c.GID)
	if err != nil {
		return err
	}
	k.installNewChild(parent, name, info)
	k.refreshInode(parent.D)
	return nil
}

// Link creates a hard link newpath referring to oldpath's inode.
func (t *Task) Link(oldpath, newpath string) error {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	oldRef, err := t.Walk(oldpath, WalkNoFollow)
	if err != nil {
		return err
	}
	oldIno := oldRef.D.Inode()
	if oldIno == nil {
		return fsapi.ENOENT
	}
	if oldIno.Mode().IsDir() {
		return fsapi.EPERM
	}
	parent, name, err := t.walkParent(newpath)
	if err != nil {
		return err
	}
	if parent.Mnt.sb != oldRef.Mnt.sb {
		return fsapi.EXDEV
	}
	c := t.Cred()
	if err := k.mayCreate(c, parent.Mnt, parent.D.Inode()); err != nil {
		return err
	}
	if err := mayWriteMnt(parent.Mnt); err != nil {
		return err
	}
	unlock := k.lockBig()
	defer unlock()
	if d := k.childDentryForCreate(parent.D, name); d != nil && !d.IsNegative() {
		return fsapi.EEXIST
	}
	info, err := parent.D.sb.fs.Link(parent.D.Inode().ID(), name, oldIno.ID())
	if err != nil {
		return err
	}
	k.installNewChild(parent, name, info)
	oldIno.applyInfo(info)
	return nil
}

// Unlink removes a file. With AggressiveNegatives the dentry survives as a
// negative (§5.2: "keep negative dentries after a file is removed, in case
// the path is reused later").
func (t *Task) Unlink(path string) error {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	defer k.reapSome()
	parent, name, err := t.walkParent(path)
	if err != nil {
		return err
	}
	d, err := k.lookupChild(parent, name)
	if err != nil {
		return err
	}
	ino := d.Inode()
	if ino.Mode().IsDir() {
		return fsapi.EISDIR
	}
	c := t.Cred()
	if err := k.mayDelete(c, parent.Mnt, parent.D.Inode(), ino); err != nil {
		return err
	}
	if err := mayWriteMnt(parent.Mnt); err != nil {
		return err
	}
	// The dentry flips negative in place: its path and prefix checks stay
	// valid, so no fastpath shootdown is needed (§3.2 invalidates only
	// path- or permission-changing mutations) — unless cached children
	// (ENOTDIR deep negatives, symlink aliases) hang below it.
	if d.nkids.Load() > 0 {
		end := k.beginMutation(d, InvalUnlink)
		defer end()
	}
	unlock := k.lockBig()
	defer unlock()
	if err := parent.D.sb.fs.Unlink(parent.D.Inode().ID(), name); err != nil {
		return err
	}
	k.dentryGone(d, ino)
	k.refreshInode(parent.D)
	return nil
}

// Rmdir removes an empty directory.
func (t *Task) Rmdir(path string) error {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	defer k.reapSome()
	parent, name, err := t.walkParent(path)
	if err != nil {
		return err
	}
	d, err := k.lookupChild(parent, name)
	if err != nil {
		return err
	}
	ino := d.Inode()
	if !ino.Mode().IsDir() {
		return fsapi.ENOTDIR
	}
	c := t.Cred()
	if err := k.mayDelete(c, parent.Mnt, parent.D.Inode(), ino); err != nil {
		return err
	}
	if err := mayWriteMnt(parent.Mnt); err != nil {
		return err
	}
	if d.refs.Load() > 0 {
		return fsapi.EBUSY
	}
	// Like unlink: the removed directory flips negative in place. Cached
	// (necessarily negative) children are torn down individually below;
	// a full shootdown is only needed when they exist.
	if d.nkids.Load() > 0 {
		end := k.beginMutation(d, InvalUnlink)
		defer end()
	}
	unlock := k.lockBig()
	defer unlock()
	if err := parent.D.sb.fs.Rmdir(parent.D.Inode().ID(), name); err != nil {
		return err
	}
	// The FS guaranteed emptiness; cached children can only be negatives —
	// drop them along with the dentry or its negative conversion.
	k.dentryGone(d, ino)
	k.refreshInode(parent.D)
	return nil
}

// dentryGone handles the cache side of a successful unlink/rmdir: the
// dentry either becomes a negative (aggressive mode, or idle in baseline
// per Linux behaviour) or leaves the cache.
func (k *Kernel) dentryGone(d *Dentry, ino *Inode) {
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	keepNegative := k.cfg.AggressiveNegatives ||
		(!k.cfg.DisableNegatives && d.refs.Load() == 0 && d.nkids.Load() == 0)
	if keepNegative && !k.negativesAllowed(d.sb) {
		keepNegative = false
	}
	if keepNegative {
		// Drop (deep-negative / alias) children: their anchor semantics
		// change with the node gone. Each child subtree falls inside this
		// function's cacheMut bracket — one bracket for the whole teardown.
		d.EachChild(func(c *Dentry) { k.killSubtreeLocked(c) })
		wasComplete := d.Flags()&DComplete != 0
		d.mu.Lock()
		d.inode.Store(nil)
		d.setFlags(DNegative)
		d.clearFlags(DComplete | DUnhydrated)
		d.mu.Unlock()
		if wasComplete {
			if tel := k.journal(); tel != nil {
				tel.Emit(telemetry.JDirIncomplete, d.ID(), 0, "gone")
			}
		}
		// The dentry flips negative in place: the parent's cached
		// listing no longer reflects its children.
		if p := d.Parent(); p != nil {
			p.invalidateList()
		}
		if k.hooks != nil {
			k.hooks.OnRecycle(d)
		}
	} else {
		k.killDentryKeepComplete(d)
	}
	// Refresh or forget the inode: another hard link may keep it alive.
	if info, err := ino.sb.fs.GetNode(ino.ID()); err == nil {
		ino.applyInfo(info)
	} else {
		ino.nlink.Store(0)
		ino.sb.forgetInode(ino.ID())
	}
}

// refreshInode re-reads a directory's metadata after a mutation beneath it
// (size/mtime changed).
func (k *Kernel) refreshInode(d *Dentry) {
	ino := d.Inode()
	if ino == nil {
		return
	}
	if info, err := d.sb.fs.GetNode(ino.ID()); err == nil {
		ino.applyInfo(info)
	}
}

// Rename moves oldpath to newpath (same mount only), carrying the paper's
// §3.2 coherence protocol: hooks invalidate the subtree before the change,
// the global rename seqlock blocks optimistic walks during it, and the
// dentry moves atomically with respect to the hash table.
func (t *Task) Rename(oldpath, newpath string) error {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	defer k.reapSome()
	oldParent, oldName, err := t.walkParent(oldpath)
	if err != nil {
		return err
	}
	newParent, newName, err := t.walkParent(newpath)
	if err != nil {
		return err
	}
	if oldParent.Mnt != newParent.Mnt {
		return fsapi.EXDEV
	}
	d, err := k.lookupChild(oldParent, oldName)
	if err != nil {
		return err
	}
	c := t.Cred()
	if err := k.mayDelete(c, oldParent.Mnt, oldParent.D.Inode(), d.Inode()); err != nil {
		return err
	}
	if err := mayWriteMnt(oldParent.Mnt); err != nil {
		return err
	}

	// Resolve any existing target (for permission + cache teardown).
	var target *Dentry
	if td, err := k.lookupChild(newParent, newName); err == nil {
		target = td
	} else if !errors.Is(err, fsapi.ENOENT) {
		return err
	}
	if target == d {
		return nil // same inode via the same dentry: no-op
	}
	if target != nil {
		if err := k.mayDelete(c, newParent.Mnt, newParent.D.Inode(), target.Inode()); err != nil {
			return err
		}
		// Renaming a directory onto a path inside itself etc. is left to
		// the FS's ENOTEMPTY/EISDIR checks; loop prevention:
		if d.Inode().Mode().IsDir() && isAncestor(d, newParent.D) {
			return fsapi.EINVAL
		}
	} else {
		if err := k.mayCreate(c, newParent.Mnt, newParent.D.Inode()); err != nil {
			return err
		}
		if d.Inode().Mode().IsDir() && isAncestor(d, newParent.D) {
			return fsapi.EINVAL
		}
	}

	// §3.2: shoot down cached fastpath state before the change.
	endOld := k.beginMutation(d, InvalRename)
	defer endOld()
	if target != nil {
		endTgt := k.beginMutation(target, InvalUnlink)
		defer endTgt()
	}

	unlock := k.lockBig()
	defer unlock()

	k.renameWriteLock()
	defer k.renameWriteUnlock()

	if err := oldParent.D.sb.fs.Rename(oldParent.D.Inode().ID(), oldName,
		newParent.D.Inode().ID(), newName); err != nil {
		return err
	}

	// Cache side. Tear down the replaced target first.
	k.cacheMutBegin()
	defer k.cacheMutEnd()
	if target != nil {
		tIno := target.Inode()
		target.EachChild(func(c *Dentry) { k.killSubtreeLocked(c) })
		target.setFlags(DDead)
		newParent.D.detachChild(newName)
		k.lru.remove(target)
		if tel := k.journal(); tel != nil {
			tel.Emit(telemetry.JEvict, target.ID(), 0, "rename-target")
		}
		if k.hooks != nil {
			k.hooks.OnEvict(target)
		}
		k.retireLater(target, newParent.D.id, newName, true)
		if tIno != nil {
			if info, err := tIno.sb.fs.GetNode(tIno.ID()); err == nil {
				tIno.applyInfo(info)
			} else {
				tIno.sb.forgetInode(tIno.ID())
			}
		}
	}

	// A residual negative/unhydrated dentry at the destination name (not
	// a live target — those were handled above) must die before the move,
	// or it would shadow the moved dentry in the caches.
	if resid := newParent.D.child(newName); resid != nil && resid != d {
		k.killSubtreeLocked(resid)
	}

	// Move d: (oldParent, oldName) → (newParent, newName), d_move-style.
	k.table.remove(oldParent.D.id, oldName, d)
	oldParent.D.detachChild(oldName)
	d.pn.Store(&parentName{parent: newParent.D, name: newName})
	newParent.D.attachChild(d)
	k.table.insert(newParent.D.id, newName, d)

	// §5.2: the old path is now known absent — keep it as a negative.
	if k.cfg.AggressiveNegatives && k.negativesAllowed(oldParent.D.sb) {
		neg := k.allocDentry(oldParent.D.sb, oldParent.D, oldName, nil)
		k.installDedup(oldParent.D, oldName, neg)
	}

	k.refreshInode(oldParent.D)
	k.refreshInode(newParent.D)
	k.refreshInode(d)
	return nil
}

// isAncestor reports whether a is an ancestor of (or equal to) b in the
// dentry tree.
func isAncestor(a, b *Dentry) bool {
	for cur := b; cur != nil; cur = cur.Parent() {
		if cur == a {
			return true
		}
	}
	return false
}

// Open opens (optionally creating) a file and returns a handle.
func (t *Task) Open(path string, flags OpenFlag, mode fsapi.Mode) (*File, error) {
	return t.openAt(PathRef{}, path, flags, mode)
}

// OpenAt opens path relative to the open directory handle dirf (the
// openat(2) shape). A nil dirf or absolute path behaves like Open.
func (t *Task) OpenAt(dirf *File, path string, flags OpenFlag, mode fsapi.Mode) (*File, error) {
	if dirf == nil || (len(path) > 0 && path[0] == '/') {
		return t.openAt(PathRef{}, path, flags, mode)
	}
	if !dirf.ref.D.IsDir() {
		return nil, fsapi.ENOTDIR
	}
	return t.openAt(dirf.ref, path, flags, mode)
}

// openAt implements Open starting at `at` for relative paths.
func (t *Task) openAt(at PathRef, path string, flags OpenFlag, mode fsapi.Mode) (*File, error) {
	k := t.k
	e := k.gate.Enter()
	defer k.gate.Exit(e)
	c := t.Cred()

	var ref PathRef
	if flags&O_CREAT != 0 {
		parent, name, err := t.walkParentAt(at, path)
		if err != nil {
			return nil, err
		}
		unlock := k.lockBig()
		d, cerr := k.lookupChild(parent, name)
		switch {
		case cerr == nil:
			unlock()
			if flags&O_EXCL != 0 {
				return nil, fsapi.EEXIST
			}
			ref = PathRef{Mnt: parent.Mnt, D: d}
			if d.IsSymlink() {
				if flags&O_NOFOLLOW != 0 {
					return nil, fsapi.ELOOP
				}
				// Re-walk through the link.
				ref, err = t.WalkFrom(at, path, 0)
				if err != nil {
					return nil, err
				}
			}
		case errors.Is(cerr, fsapi.ENOENT):
			if err := k.mayCreate(c, parent.Mnt, parent.D.Inode()); err != nil {
				unlock()
				return nil, err
			}
			if err := mayWriteMnt(parent.Mnt); err != nil {
				unlock()
				return nil, err
			}
			info, err := parent.D.sb.fs.Create(parent.D.Inode().ID(), name, mode, c.UID, c.GID)
			if err != nil {
				unlock()
				if errors.Is(err, fsapi.EEXIST) && flags&O_EXCL == 0 {
					// Lost a create race benignly; reopen.
					return t.openAt(at, path, flags&^O_CREAT, mode)
				}
				return nil, err
			}
			d = k.installNewChild(parent, name, info)
			k.refreshInode(parent.D)
			unlock()
			ref = PathRef{Mnt: parent.Mnt, D: d}
		default:
			unlock()
			return nil, cerr
		}
	} else {
		var fl WalkFlags
		if flags&O_NOFOLLOW != 0 {
			fl |= WalkNoFollow
		}
		if flags&O_DIRECTORY != 0 {
			fl |= WalkDirectory
		}
		var err error
		ref, err = t.WalkFrom(at, path, fl)
		if err != nil {
			return nil, err
		}
	}

	ino := ref.D.Inode()
	if ino == nil {
		return nil, fsapi.ENOENT
	}
	mode2 := ino.Mode()
	if mode2.IsSymlink() {
		return nil, fsapi.ELOOP // O_NOFOLLOW on a symlink
	}
	if flags&O_DIRECTORY != 0 && !mode2.IsDir() {
		return nil, fsapi.ENOTDIR
	}
	if mode2.IsDir() && flags&O_ACCMODE != O_RDONLY {
		return nil, fsapi.EISDIR
	}
	if err := k.permission(c, ref.Mnt, ino, maskForOpen(flags)); err != nil {
		return nil, err
	}
	if flags&O_ACCMODE != O_RDONLY {
		if err := mayWriteMnt(ref.Mnt); err != nil {
			return nil, err
		}
	}
	// Pathname mediation (AppArmor-style LSMs): consulted once per open
	// with the object's canonical path, outside the lookup fastpath.
	if !k.lsm.Empty() {
		if err := k.lsm.CheckPath(c, ref.D.PathTo(), maskForOpen(flags)); err != nil {
			return nil, err
		}
	}
	if flags&O_TRUNC != 0 && mode2.IsRegular() && flags&O_ACCMODE != O_RDONLY {
		var zero int64
		info, err := ref.D.sb.fs.SetAttr(ino.ID(), fsapi.SetAttr{Size: &zero})
		if err != nil {
			return nil, err
		}
		ino.applyInfo(info)
	}

	f := &File{t: t, ref: ref, ino: ino, flags: flags}
	ref.D.Ref()
	if r, ok := ref.D.sb.fs.(fsapi.NodeRetainer); ok {
		r.RetainNode(ino.ID())
		f.release = func() { r.ReleaseNode(ino.ID()) }
	}
	return f, nil
}
