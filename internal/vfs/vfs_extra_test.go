package vfs

import (
	"errors"
	"fmt"
	"testing"

	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/lsm"
	"dircache/internal/memfs"
	"dircache/internal/slab"
)

func TestAccessMasks(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Create("/etc/script", 0o754); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/etc/script", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	a := alice(k) // uid 1000: owner
	b := bob(k)   // uid 1001: other
	if err := a.Access("/etc/script", lsm.MayRead|lsm.MayWrite|lsm.MayExec); err != nil {
		t.Fatalf("owner rwx: %v", err)
	}
	if err := b.Access("/etc/script", lsm.MayRead); err != nil {
		t.Fatalf("other read: %v", err)
	}
	if err := b.Access("/etc/script", lsm.MayWrite); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("other write: %v", err)
	}
	if err := b.Access("/etc/script", lsm.MayExec); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("other exec: %v", err)
	}
	if err := b.Access("/ghost", lsm.MayRead); !errors.Is(err, fsapi.ENOENT) {
		t.Fatalf("missing: %v", err)
	}
}

func TestGroupPermissions(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Create("/etc/groupfile", 0o640); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown("/etc/groupfile", 0, 42); err != nil {
		t.Fatal(err)
	}
	member := k.NewTask(cred.New(2000, 2000, []uint32{42}, ""))
	outsider := k.NewTask(cred.New(2000, 2000, []uint32{43}, ""))
	if err := member.Access("/etc/groupfile", lsm.MayRead); err != nil {
		t.Fatalf("supplementary group read: %v", err)
	}
	if err := outsider.Access("/etc/groupfile", lsm.MayRead); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("outsider read: %v", err)
	}
	if err := member.Access("/etc/groupfile", lsm.MayWrite); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("group write on 640: %v", err)
	}
}

func TestRootExecRequiresSomeXBit(t *testing.T) {
	_, root := newKernel(t, Config{})
	root.Create("/etc/noexec", 0o644)
	root.Create("/etc/exec", 0o700)
	if err := root.Access("/etc/noexec", lsm.MayExec); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("root exec of 644 file: %v", err)
	}
	if err := root.Access("/etc/exec", lsm.MayExec); err != nil {
		t.Fatalf("root exec of 700 file: %v", err)
	}
}

func TestNoExecMount(t *testing.T) {
	_, root := newKernel(t, Config{})
	data := memfs.New(memfs.Options{})
	root.Mkdir("/opt", 0o755)
	if _, err := root.Mount(data, "/opt", MntNoExec); err != nil {
		t.Fatal(err)
	}
	root.Create("/opt/tool", 0o755)
	if err := root.Access("/opt/tool", lsm.MayExec); !errors.Is(err, fsapi.EACCES) {
		t.Fatalf("exec on noexec mount: %v", err)
	}
	if err := root.Access("/opt/tool", lsm.MayRead); err != nil {
		t.Fatalf("read on noexec mount: %v", err)
	}
	// Directories remain searchable (noexec gates regular files only).
	if err := root.Mkdir("/opt/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Stat("/opt/sub"); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatePath(t *testing.T) {
	_, root := newKernel(t, Config{})
	f, _ := root.Open("/etc/t", O_CREAT|O_WRONLY, 0o644)
	f.Write(make([]byte, 100))
	f.Close()
	if err := root.Truncate("/etc/t", 10); err != nil {
		t.Fatal(err)
	}
	ni, _ := root.Stat("/etc/t")
	if ni.Size != 10 {
		t.Fatalf("size %d", ni.Size)
	}
	if err := root.Truncate("/etc", 0); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("truncate dir: %v", err)
	}
}

func TestWalkParentEdges(t *testing.T) {
	_, root := newKernel(t, Config{})
	// Removing "/" or "." must fail cleanly.
	if err := root.Unlink("/"); err == nil {
		t.Fatal("unlink / accepted")
	}
	if err := root.Rmdir("///"); err == nil {
		t.Fatal("rmdir /// accepted")
	}
	if err := root.Mkdir("/etc/.", 0o755); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("mkdir dot: %v", err)
	}
	if err := root.Unlink("/etc/.."); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("unlink dotdot: %v", err)
	}
	// Trailing slashes on a create resolve to the parent correctly.
	if err := root.Mkdir("/newdir///", 0o755); err != nil {
		t.Fatalf("mkdir with trailing slashes: %v", err)
	}
	if _, err := root.Stat("/newdir"); err != nil {
		t.Fatal(err)
	}
}

func TestRenameAcrossMountsEXDEV(t *testing.T) {
	_, root := newKernel(t, Config{})
	data := memfs.New(memfs.Options{})
	root.Mkdir("/mnt", 0o755)
	if _, err := root.Mount(data, "/mnt", 0); err != nil {
		t.Fatal(err)
	}
	root.Create("/mnt/inside", 0o644)
	if err := root.Rename("/mnt/inside", "/etc/outside"); !errors.Is(err, fsapi.EXDEV) {
		t.Fatalf("cross-mount rename: %v", err)
	}
	if err := root.Link("/mnt/inside", "/etc/hl"); !errors.Is(err, fsapi.EXDEV) {
		t.Fatalf("cross-mount link: %v", err)
	}
}

func TestUnmountErrors(t *testing.T) {
	k, root := newKernel(t, Config{})
	if err := root.Unmount("/etc"); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("unmount non-mountpoint: %v", err)
	}
	data := memfs.New(memfs.Options{})
	root.Mkdir("/mnt", 0o755)
	root.Mount(data, "/mnt", 0)
	root.Mkdir("/mnt/deeper", 0o755)
	inner := memfs.New(memfs.Options{})
	root.Mount(inner, "/mnt/deeper", 0)
	if err := root.Unmount("/mnt"); !errors.Is(err, fsapi.EBUSY) {
		t.Fatalf("unmount busy parent: %v", err)
	}
	if err := root.Unmount("/mnt/deeper"); err != nil {
		t.Fatal(err)
	}
	if err := root.Unmount("/mnt"); err != nil {
		t.Fatal(err)
	}
	// Non-root denied.
	a := alice(k)
	if err := a.Unmount("/mnt"); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("non-root unmount: %v", err)
	}
	if _, err := a.Mount(memfs.New(memfs.Options{}), "/mnt", 0); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("non-root mount: %v", err)
	}
	if err := a.Chroot("/etc"); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("non-root chroot: %v", err)
	}
}

func TestChownSemantics(t *testing.T) {
	k, root := newKernel(t, Config{})
	root.Create("/etc/owned", 0o644)
	root.Chown("/etc/owned", 1000, 1000)
	a := alice(k)
	// Owner may "change" to the same uid with a group they belong to.
	if err := a.Chown("/etc/owned", 1000, 1000); err != nil {
		t.Fatalf("no-op chown by owner: %v", err)
	}
	// Owner may not give the file away.
	if err := a.Chown("/etc/owned", 1001, 1001); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("giveaway chown: %v", err)
	}
	b := bob(k)
	if err := b.Chown("/etc/owned", 1001, 1001); !errors.Is(err, fsapi.EPERM) {
		t.Fatalf("non-owner chown: %v", err)
	}
}

func TestDirHandleRewind(t *testing.T) {
	_, root := newKernel(t, Config{DirCompleteness: true})
	root.Mkdir("/d", 0o755)
	for i := 0; i < 5; i++ {
		root.Create(fmt.Sprintf("/d/f%d", i), 0o644)
	}
	f, err := root.Open("/d", O_RDONLY|O_DIRECTORY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	first, err := f.ReadDirAll()
	if err != nil || len(first) != 5 {
		t.Fatalf("first pass: %d %v", len(first), err)
	}
	// Rewind and read again through the same handle.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	second, err := f.ReadDirAll()
	if err != nil || len(second) != 5 {
		t.Fatalf("after rewind: %d %v", len(second), err)
	}
	// Reading at EOF yields nothing.
	more, err := f.ReadDir(10)
	if err != nil || len(more) != 0 {
		t.Fatalf("past EOF: %d %v", len(more), err)
	}
}

func TestFileAfterClose(t *testing.T) {
	_, root := newKernel(t, Config{})
	f, _ := root.Open("/etc/passwd", O_RDWR, 0)
	f.Close()
	if err := f.Close(); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("write after close: %v", err)
	}
	if _, err := f.Seek(0, 0); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("seek after close: %v", err)
	}
	if _, err := f.Stat(); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("stat after close: %v", err)
	}
}

func TestFileModeEnforcement(t *testing.T) {
	_, root := newKernel(t, Config{})
	ro, _ := root.Open("/etc/passwd", O_RDONLY, 0)
	defer ro.Close()
	if _, err := ro.Write([]byte("x")); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("write to O_RDONLY: %v", err)
	}
	wo, _ := root.Open("/etc/passwd", O_WRONLY, 0)
	defer wo.Close()
	if _, err := wo.Read(make([]byte, 1)); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("read from O_WRONLY: %v", err)
	}
	if _, err := wo.ReadAt(make([]byte, 1), 0); !errors.Is(err, fsapi.EBADF) {
		t.Fatalf("readat from O_WRONLY: %v", err)
	}
}

func TestSeekWhence(t *testing.T) {
	_, root := newKernel(t, Config{})
	f, _ := root.Open("/etc/data", O_CREAT|O_RDWR, 0o644)
	defer f.Close()
	f.Write([]byte("0123456789"))
	if pos, err := f.Seek(-3, 2); err != nil || pos != 7 {
		t.Fatalf("seek end: %d %v", pos, err)
	}
	buf := make([]byte, 3)
	n, _ := f.Read(buf)
	if string(buf[:n]) != "789" {
		t.Fatalf("read after seek: %q", buf[:n])
	}
	if pos, err := f.Seek(-2, 1); err != nil || pos != 8 {
		t.Fatalf("seek cur: %d %v", pos, err)
	}
	if _, err := f.Seek(-100, 0); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("negative seek: %v", err)
	}
	if _, err := f.Seek(0, 9); !errors.Is(err, fsapi.EINVAL) {
		t.Fatalf("bad whence: %v", err)
	}
}

func TestGetcwdAcrossBindMount(t *testing.T) {
	_, root := newKernel(t, Config{})
	root.Mkdir("/data", 0o755)
	root.Mkdir("/data/deep", 0o755)
	root.Mkdir("/view", 0o755)
	if _, err := root.BindMount("/data", "/view", 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Chdir("/view/deep"); err != nil {
		t.Fatal(err)
	}
	if got := root.Getcwd(); got != "/view/deep" {
		t.Fatalf("getcwd through bind mount: %q", got)
	}
}

func TestSymlinkLoopInMiddle(t *testing.T) {
	_, root := newKernel(t, Config{})
	root.Symlink("/l2/x", "/l1")
	root.Symlink("/l1/x", "/l2")
	if _, err := root.Stat("/l1/whatever"); !errors.Is(err, fsapi.ELOOP) {
		t.Fatalf("mid-path loop: %v", err)
	}
}

func TestPathTooLong(t *testing.T) {
	_, root := newKernel(t, Config{})
	long := make([]byte, MaxPath+10)
	for i := range long {
		long[i] = 'a'
	}
	long[0] = '/'
	if _, err := root.Stat(string(long)); !errors.Is(err, fsapi.ENAMETOOLONG) {
		t.Fatalf("overlong path: %v", err)
	}
	comp := make([]byte, 300)
	for i := range comp {
		comp[i] = 'b'
	}
	if _, err := root.Stat("/" + string(comp)); !errors.Is(err, fsapi.ENAMETOOLONG) {
		t.Fatalf("overlong component: %v", err)
	}
}

func TestHashTableEraSemantics(t *testing.T) {
	for _, mode := range []SyncMode{SyncRCU, SyncBucketLock, SyncBigLock} {
		k, root := newKernel(t, Config{SyncMode: mode})
		ht := newHashTable(mode, 16, slab.New[tnode](k.gate, slab.Options{}), k.dentries)
		root.Create("/etc/probe", 0o644)
		ref, err := root.Walk("/etc/probe", 0)
		if err != nil {
			t.Fatal(err)
		}
		ht.insert(1, "probe", ref.D)
		ht.insert(1, "probe2", ref.D) // same bucket size 16: likely chained
		if got := ht.lookup(1, "probe"); got != ref.D {
			t.Fatalf("%v: lookup lost entry", mode)
		}
		ht.remove(1, "probe", ref.D)
		if ht.lookup(1, "probe") != nil {
			t.Fatalf("%v: removed entry found", mode)
		}
		if ht.lookup(1, "probe2") != ref.D {
			t.Fatalf("%v: sibling lost on remove", mode)
		}
		// Removing a non-existent entry is a no-op.
		ht.remove(1, "ghost", ref.D)
		_ = k
	}
	if SyncRCU.String() != "rcu" || SyncBigLock.String() != "biglock" ||
		SyncBucketLock.String() != "bucketlock" {
		t.Fatal("era names")
	}
}

func TestShrinkRespectsPins(t *testing.T) {
	k, root := newKernel(t, Config{})
	root.Mkdir("/pinned", 0o755)
	f, err := root.Open("/pinned", O_RDONLY|O_DIRECTORY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	k.DropCaches()
	// The open directory (and its ancestors) must survive.
	if f.Dentry().IsDead() {
		t.Fatal("pinned dentry evicted")
	}
	if _, err := f.ReadDirAll(); err != nil {
		t.Fatalf("handle unusable after dropcaches: %v", err)
	}
}

func TestStatFollowsFinalSymlinkChain(t *testing.T) {
	_, root := newKernel(t, Config{})
	root.Symlink("/etc/passwd", "/a1")
	root.Symlink("/a1", "/a2")
	root.Symlink("/a2", "/a3")
	ni, err := root.Stat("/a3")
	if err != nil || !ni.Mode.IsRegular() {
		t.Fatalf("chained links: %+v %v", ni, err)
	}
}

func TestPathToDiagnostics(t *testing.T) {
	_, root := newKernel(t, Config{})
	ref, err := root.Walk("/usr/include/sys", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ref.D.PathTo(); got != "/usr/include/sys" {
		t.Fatalf("PathTo: %q", got)
	}
	rootRef, _ := root.Walk("/", 0)
	if got := rootRef.D.PathTo(); got != "/" {
		t.Fatalf("root PathTo: %q", got)
	}
}
