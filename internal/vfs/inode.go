package vfs

import (
	"sync"
	"sync/atomic"

	"dircache/internal/fsapi"
	"dircache/internal/lsm"
)

// Inode is the VFS in-memory inode: cached metadata for one low-level FS
// node. Fields are atomics so the lock-free walk can read permission bits
// without locks, mirroring RCU-walk reading i_mode/i_uid directly.
type Inode struct {
	sb *Super
	id fsapi.NodeID

	mode  atomic.Uint32
	uid   atomic.Uint32
	gid   atomic.Uint32
	nlink atomic.Uint32
	size  atomic.Int64
	mtime atomic.Uint64

	// label is the object security label consumed by LSM modules (the
	// analogue of a cached security xattr).
	label atomic.Value // string
}

// ID returns the low-level FS node ID (inode number).
func (ino *Inode) ID() fsapi.NodeID { return ino.id }

// Super returns the owning superblock.
func (ino *Inode) Super() *Super { return ino.sb }

// Mode returns the cached mode.
func (ino *Inode) Mode() fsapi.Mode { return fsapi.Mode(ino.mode.Load()) }

// UID returns the cached owner.
func (ino *Inode) UID() uint32 { return ino.uid.Load() }

// GID returns the cached group.
func (ino *Inode) GID() uint32 { return ino.gid.Load() }

// Size returns the cached size.
func (ino *Inode) Size() int64 { return ino.size.Load() }

// Nlink returns the cached link count.
func (ino *Inode) Nlink() uint32 { return ino.nlink.Load() }

// Mtime returns the cached logical modification stamp.
func (ino *Inode) Mtime() uint64 { return ino.mtime.Load() }

// Label returns the object security label ("" if unlabeled).
func (ino *Inode) Label() string {
	if v := ino.label.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// SetLabel stores the object security label.
func (ino *Inode) SetLabel(l string) { ino.label.Store(l) }

// View renders the inode for LSM hooks.
func (ino *Inode) View() lsm.InodeView {
	return lsm.InodeView{
		ID:    ino.id,
		Mode:  ino.Mode(),
		UID:   ino.UID(),
		GID:   ino.GID(),
		Label: ino.Label(),
	}
}

// applyInfo refreshes the cached metadata from a low-level FS report.
func (ino *Inode) applyInfo(info fsapi.NodeInfo) {
	ino.mode.Store(uint32(info.Mode))
	ino.uid.Store(info.UID)
	ino.gid.Store(info.GID)
	ino.nlink.Store(info.Nlink)
	ino.size.Store(info.Size)
	ino.mtime.Store(info.Mtime)
}

// Info snapshots the cached metadata as a NodeInfo.
func (ino *Inode) Info() fsapi.NodeInfo {
	return fsapi.NodeInfo{
		ID:    ino.id,
		Mode:  ino.Mode(),
		UID:   ino.UID(),
		GID:   ino.GID(),
		Nlink: ino.Nlink(),
		Size:  ino.Size(),
		Mtime: ino.Mtime(),
	}
}

// Super is a mounted file system instance: the low-level FS, its inode
// cache, and the root of its dentry tree. Bind mounts share a Super; each
// Mount points at one.
type Super struct {
	id   uint64
	k    *Kernel // owning kernel: resolves packed dentry refs (alias targets)
	fs   fsapi.FileSystem
	caps fsapi.Capabilities

	root *Dentry

	mu     sync.Mutex
	icache map[fsapi.NodeID]*Inode
}

// FS returns the low-level file system.
func (sb *Super) FS() fsapi.FileSystem { return sb.fs }

// Caps returns the FS capabilities recorded at mount time.
func (sb *Super) Caps() fsapi.Capabilities { return sb.caps }

// Root returns the root dentry of the superblock's dentry tree.
func (sb *Super) Root() *Dentry { return sb.root }

// inodeFor returns the cached Inode for info.ID, creating or refreshing it.
func (sb *Super) inodeFor(info fsapi.NodeInfo) *Inode {
	sb.mu.Lock()
	ino, ok := sb.icache[info.ID]
	if !ok {
		ino = &Inode{sb: sb, id: info.ID}
		sb.icache[info.ID] = ino
	}
	sb.mu.Unlock()
	ino.applyInfo(info)
	return ino
}

// forgetInode drops an inode from the cache once its last name is gone.
func (sb *Super) forgetInode(id fsapi.NodeID) {
	sb.mu.Lock()
	delete(sb.icache, id)
	sb.mu.Unlock()
}

// InodeCount reports the number of cached inodes (tests, tools).
func (sb *Super) InodeCount() int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return len(sb.icache)
}
