package vfs_test

// The auditor's whole point is running beside live traffic, so its VFS-
// level checks are exercised here under the same walk-vs-mutate storm as
// TestStressWalkVsMutate. This file is an external test package: the
// auditor imports vfs, so an in-package test would be an import cycle.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dircache/internal/audit"
	"dircache/internal/cred"
	"dircache/internal/fsapi"
	"dircache/internal/memfs"
	"dircache/internal/telemetry"
	"dircache/internal/vfs"
)

// TestAuditInvariantDuringWalkStress runs the invariant auditor
// continuously while walkers race rename/chmod/create/unlink/Shrink
// traffic. Valid passes must report zero violations throughout, and a
// quiescent pass after the storm must be achievable and clean.
func TestAuditInvariantDuringWalkStress(t *testing.T) {
	k := vfs.NewKernel(vfs.Config{
		CacheCapacity:       96,
		DirCompleteness:     true,
		AggressiveNegatives: true,
	}, memfs.New(memfs.Options{}))
	// Telemetry from kernel start: the journal cross-checks assume no
	// emission gap.
	tel := telemetry.New(telemetry.Options{})
	tel.Enable()
	k.SetTelemetry(tel)

	root := k.NewTask(cred.Root())
	for _, p := range []string{"/a", "/a/b", "/a/b/c", "/mv", "/tmp"} {
		if err := root.Mkdir(p, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.Create("/a/b/c/file", 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := root.Create(fmt.Sprintf("/tmp/s%03d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Prime a DIR_COMPLETE directory so the completeness checks have a
	// subject.
	d, err := root.Open("/tmp", vfs.O_RDONLY|vfs.O_DIRECTORY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadDirAll(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	iters := 2000
	if testing.Short() {
		iters = 200
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			task := k.NewTask(cred.Root())
			for i := 0; i < iters; i++ {
				if _, err := task.Stat("/a/b/c/file"); err != nil {
					panic(fmt.Sprintf("stable path vanished: %v", err))
				}
				task.Stat(fmt.Sprintf("/tmp/s%03d", (seed*31+i)%32))
				if _, err := task.Stat("/etc/enoent"); err == nil {
					panic("missing path resolved")
				}
				task.Stat("/mv/dir") // flaps mid-rename
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		task := k.NewTask(cred.Root())
		task.Mkdir("/mvsrc", 0o755)
		for i := 0; i < iters; i++ {
			task.Rename("/mvsrc", "/mv/dir")
			task.Rename("/mv/dir", "/mvsrc")
			task.Chmod("/a/b", fsapi.Mode(0o755))
			task.Chmod("/a/b", fsapi.Mode(0o711))
			p := fmt.Sprintf("/tmp/churn%02d", i%8)
			task.Create(p, 0o644)
			task.Unlink(p)
			if i%4 == 0 {
				k.Shrink(4)
			}
		}
	}()

	// Drive passes directly (run first, then check stop) so at least one
	// pass lands inside the storm even when the single-CPU scheduler
	// delays this goroutine until the storm's tail.
	aud := audit.New(k, nil)
	stop := make(chan struct{})
	var loop audit.LoopResult
	var audWG sync.WaitGroup
	audWG.Add(1)
	go func() {
		defer audWG.Done()
		for {
			res := aud.Run()
			loop.Passes++
			if res.Valid {
				loop.Valid++
				loop.Violations += res.Violations()
				loop.Findings = append(loop.Findings, res.Findings...)
			}
			select {
			case <-stop:
				return
			default:
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(stop)
	audWG.Wait()

	if loop.Passes == 0 {
		t.Fatal("auditor never ran a pass during the storm")
	}
	if loop.Violations != 0 {
		t.Fatalf("auditor found %d violations during stress (valid passes %d/%d): %v",
			loop.Violations, loop.Valid, loop.Passes, loop.Findings)
	}

	// At quiescence a valid pass is guaranteed and must be clean.
	r := aud.RunUntilValid(10)
	if !r.Valid {
		t.Fatalf("no valid audit pass at quiescence: %s", r.Summary())
	}
	if r.Violations() != 0 {
		t.Fatalf("violations at quiescence: %s", r.Summary())
	}
	if r.Checked["dir_complete"] == 0 {
		t.Fatalf("audit never exercised the dir_complete check: %v", r.Checked)
	}
}
