module dircache

go 1.23
