package dircache

import "dircache/internal/fsapi"

// Sentinel errors, comparable with errors.Is against anything the library
// returns. They carry POSIX errno identities.
var (
	ErrPermission   error = fsapi.EACCES
	ErrNotPermitted error = fsapi.EPERM
	ErrNotExist     error = fsapi.ENOENT
	ErrExist        error = fsapi.EEXIST
	ErrNotDir       error = fsapi.ENOTDIR
	ErrIsDir        error = fsapi.EISDIR
	ErrNotEmpty     error = fsapi.ENOTEMPTY
	ErrTooManyLinks error = fsapi.ELOOP
	ErrNameTooLong  error = fsapi.ENAMETOOLONG
	ErrReadOnly     error = fsapi.EROFS
	ErrCrossDevice  error = fsapi.EXDEV
	ErrBusy         error = fsapi.EBUSY
	ErrNoSpace      error = fsapi.ENOSPC
	ErrStale        error = fsapi.ESTALE
	ErrBadHandle    error = fsapi.EBADF
	ErrInvalid      error = fsapi.EINVAL
)

// Errno returns the POSIX errno number for an error produced by this
// library (0 for nil, 5/EIO for foreign errors).
func Errno(err error) int { return int(fsapi.ToErrno(err)) }
