package dircache_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"dircache"
)

// poolFixture builds an optimized system with a two-tenant tree: a
// world-readable deep path and a 0700 subtree per tenant uid.
func poolFixture(t *testing.T) *dircache.System {
	t.Helper()
	sys := dircache.New(dircache.Optimized())
	root := sys.Start(dircache.RootCreds())
	defer root.Exit()
	if err := root.MkdirAll("/pub/a/b/c/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := root.WriteFile("/pub/a/b/c/d/f.txt", []byte("pub"), 0o644); err != nil {
		t.Fatal(err)
	}
	for uid := uint32(1); uid <= 2; uid++ {
		base := fmt.Sprintf("/tenant%d", uid)
		if err := root.MkdirAll(base+"/priv", 0o700); err != nil {
			t.Fatal(err)
		}
		if err := root.WriteFile(base+"/priv/secret", []byte("s"), 0o600); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{base, base + "/priv", base + "/priv/secret"} {
			if err := root.Chown(p, uid, uid); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys
}

// TestProcessPoolRecycleIsolation is satellite 1's contract: a Process
// recycled from one tenant to another carries nothing over — not the
// working directory, not the credential, and not the per-task shortcut
// scratch (no hash-resume from the previous tenant's prefix).
func TestProcessPoolRecycleIsolation(t *testing.T) {
	sys := poolFixture(t)
	pool := sys.NewProcessPool(4)

	// Tenant 1 works deep inside its private subtree, warming its own
	// shortcut state, then releases the Process.
	p1 := pool.GetCreds(dircache.UserCreds(1))
	if err := p1.Chdir("/tenant1/priv"); err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Stat("secret"); err != nil {
		t.Fatal(err)
	}
	// Deep public walks populate the walk-resume scratch.
	for i := 0; i < 4; i++ {
		if _, err := p1.Stat("/pub/a/b/c/d/f.txt"); err != nil {
			t.Fatal(err)
		}
	}
	pool.Put(p1)

	// Tenant 2 gets the recycled Process: fresh cwd, tenant-2 credential.
	p2 := pool.Get(dircache.NewIdentity(dircache.UserCreds(2)))
	if got := pool.Stats().Reuses; got != 1 {
		t.Fatalf("expected a recycled Process, reuses=%d", got)
	}
	if got := p2.Getcwd(); got != "/" {
		t.Fatalf("recycled Process inherited cwd %q", got)
	}
	if _, err := p2.Stat("/tenant1/priv/secret"); !errors.Is(err, dircache.ErrPermission) {
		t.Fatalf("recycled Process kept tenant 1 privilege: %v", err)
	}
	if _, err := p2.Stat("/tenant2/priv/secret"); err != nil {
		t.Fatalf("recycled Process denied as tenant 2: %v", err)
	}
	pool.Put(p2)

	if rep := sys.Doctor(); rep.Violations() != 0 {
		t.Fatalf("auditor after pooled reuse:\n%s", rep.Summary())
	}
}

// TestProcessPoolCapAndStats checks parking behaviour: the pool parks at
// most maxIdle Processes and exits the rest.
func TestProcessPoolCapAndStats(t *testing.T) {
	sys := poolFixture(t)
	pool := sys.NewProcessPool(2)
	id := dircache.NewIdentity(dircache.UserCreds(1))
	procs := []*dircache.Process{pool.Get(id), pool.Get(id), pool.Get(id)}
	for _, p := range procs {
		pool.Put(p)
	}
	st := pool.Stats()
	if st.Idle != 2 {
		t.Fatalf("idle=%d, want the maxIdle cap of 2", st.Idle)
	}
	if st.Gets != 3 || st.Returns != 3 || st.Reuses != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Draining reuses both parked Processes before building fresh ones.
	a, b, c := pool.Get(id), pool.Get(id), pool.Get(id)
	if got := pool.Stats().Reuses; got != 2 {
		t.Fatalf("reuses=%d, want 2", got)
	}
	for _, p := range []*dircache.Process{a, b, c} {
		pool.Put(p)
	}
}

// TestIdentitySharesPCC checks the server-side identity contract: two
// Processes started from one Identity share a credential (and so a prefix
// check cache), while UserCreds-built one-offs do not break isolation.
func TestIdentitySharesPCC(t *testing.T) {
	sys := poolFixture(t)
	id := dircache.NewIdentity(dircache.UserCreds(1))
	p1 := sys.StartAs(id)
	p2 := sys.StartAs(id)
	defer p1.Exit()
	defer p2.Exit()

	before := sys.Stats()
	// p1 warms the path; both processes then ride the fastpath. With a
	// shared credential, p2's probes hit the same PCC p1 filled.
	for i := 0; i < 3; i++ {
		if _, err := p1.Stat("/pub/a/b/c/d/f.txt"); err != nil {
			t.Fatal(err)
		}
	}
	warm := sys.Stats().Delta(before)
	if _, err := p2.Stat("/pub/a/b/c/d/f.txt"); err != nil {
		t.Fatal(err)
	}
	d := sys.Stats().Delta(before)
	if d.PCCMisses != warm.PCCMisses {
		t.Fatalf("shared-identity process missed the PCC: %d -> %d misses",
			warm.PCCMisses, d.PCCMisses)
	}
	if c := id.Creds(); c.UID != 1 || c.GID != 1 {
		t.Fatalf("identity creds read back %+v", c)
	}
}

// TestPoolConcurrentChurn hammers Get/Put from many goroutines (run
// under -race via `make audit`'s stress siblings).
func TestPoolConcurrentChurn(t *testing.T) {
	sys := poolFixture(t)
	pool := sys.NewProcessPool(8)
	ids := []*dircache.Identity{
		dircache.NewIdentity(dircache.UserCreds(1)),
		dircache.NewIdentity(dircache.UserCreds(2)),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := ids[g%2]
			want := fmt.Sprintf("/tenant%d/priv/secret", g%2+1)
			other := fmt.Sprintf("/tenant%d/priv/secret", (g+1)%2+1)
			for i := 0; i < 20; i++ {
				p := pool.Get(id)
				if _, err := p.Stat(want); err != nil {
					errs <- fmt.Errorf("g%d own secret: %w", g, err)
				}
				if _, err := p.Stat(other); !errors.Is(err, dircache.ErrPermission) {
					errs <- fmt.Errorf("g%d crossed tenants: %v", g, err)
				}
				pool.Put(p)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if rep := sys.Doctor(); rep.Violations() != 0 {
		t.Fatalf("auditor after pool churn:\n%s", rep.Summary())
	}
}
