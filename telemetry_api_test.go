package dircache_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"dircache"
)

// walkSome drives enough lookups through sys to populate histograms and
// (at sample rate 1) the trace ring.
func walkSome(t *testing.T, sys *dircache.System) {
	t.Helper()
	p := sys.Start(dircache.RootCreds())
	if err := p.MkdirAll("/srv/app/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile("/srv/app/data/cfg.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := p.Stat("/srv/app/data/cfg.json"); err != nil {
			t.Fatal(err)
		}
		p.Stat("/srv/app/data/missing") // populate + hit negative caching
	}
}

func TestTelemetryEndToEnd(t *testing.T) {
	cfg := dircache.Optimized()
	cfg.Telemetry = dircache.TelemetryOptions{Enabled: true, TraceSample: 1, TraceBuffer: 64}
	sys := dircache.New(cfg)
	tl := sys.Telemetry()
	if tl == nil {
		t.Fatal("Telemetry() == nil on an enabled system")
	}
	walkSome(t, sys)

	p50, p95, p99, ok := tl.HistogramQuantiles("walk")
	if !ok {
		t.Fatal("walk histogram empty after workload")
	}
	if p50 <= 0 || p95 < p50 || p99 < p95 {
		t.Fatalf("implausible quantiles p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if _, _, _, ok := tl.HistogramQuantiles("fastpath"); !ok {
		t.Fatal("fastpath histogram empty: repeated Stats should hit the fastpath")
	}
	if _, _, _, ok := tl.HistogramQuantiles("no_such_hist"); ok {
		t.Fatal("unknown histogram name reported ok")
	}
	if tl.TraceCount() == 0 {
		t.Fatal("no traces retained at sample rate 1")
	}

	// The exporter endpoint must serve Prometheus-parseable histograms
	// and a JSON trace dump with at least one complete sampled walk.
	srv, err := tl.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	checkPrometheusParseable(t, string(body))
	for _, want := range []string{
		"dircache_walk_latency_seconds_bucket",
		"dircache_walk_latency_seconds_count",
		`dircache_stat{source="system",name="Lookups"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics output missing %q", want)
		}
	}

	resp, err = http.Get("http://" + srv.Addr() + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dropped uint64 `json:"dropped"`
		Traces  []struct {
			Path    string `json:"path"`
			Outcome string `json:"outcome"`
			DurNS   int64  `json:"dur_ns"`
			Events  []struct {
				Kind string `json:"kind"`
			} `json:"events"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace dump not JSON: %v", err)
	}
	resp.Body.Close()
	if len(doc.Traces) == 0 {
		t.Fatal("trace dump empty")
	}
	complete := false
	for _, tr := range doc.Traces {
		if tr.Path == "/srv/app/data/cfg.json" && tr.Outcome == "ok" && tr.DurNS > 0 && len(tr.Events) > 0 {
			complete = true
		}
	}
	if !complete {
		t.Fatalf("no complete sampled walk for the stat'd path among %d traces", len(doc.Traces))
	}

	// Detach: the handle keeps working, the system stops feeding it.
	sys.DisableTelemetry()
	if sys.Telemetry() != nil {
		t.Fatal("Telemetry() non-nil after DisableTelemetry")
	}
	before := tl.TraceCount()
	walkSome(t, sys)
	if got := tl.TraceCount(); got != before {
		t.Fatalf("detached system still traced: %d -> %d", before, got)
	}
}

// checkPrometheusParseable validates the text exposition format closely
// enough to catch a malformed exporter: every non-comment line must be
// `name{labels} value` or `name value`, with histogram bucket counts
// cumulative and non-decreasing.
func checkPrometheusParseable(t *testing.T, body string) {
	t.Helper()
	var prevName string
	var prevCum uint64
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = series[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			if name != prevName {
				prevName, prevCum = name, 0
			}
			cum := uint64(f)
			if cum < prevCum {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			prevCum = cum
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
}

func TestDefaultTelemetrySharedAcrossSystems(t *testing.T) {
	tl := dircache.NewTelemetry(dircache.TelemetryOptions{TraceSample: 1})
	dircache.SetDefaultTelemetry(tl)
	defer dircache.SetDefaultTelemetry(nil)

	a := dircache.New(dircache.Optimized())
	b := dircache.New(dircache.Baseline())
	walkSome(t, a)
	walkSome(t, b)
	if tl.TraceCount() == 0 {
		t.Fatal("default telemetry saw no walks")
	}
	if _, _, _, ok := tl.HistogramQuantiles("walk"); !ok {
		t.Fatal("default telemetry walk histogram empty")
	}

	// Explicitly-enabled config takes precedence over the default.
	cfg := dircache.Baseline()
	cfg.Telemetry.Enabled = true
	own := dircache.New(cfg)
	if own.Telemetry() == nil {
		t.Fatal("own telemetry not attached")
	}
	if own.Telemetry().TraceCount() != 0 && own.Telemetry() == nil {
		t.Fatal("unexpected sharing")
	}
}

func TestStatsDelta(t *testing.T) {
	sys := dircache.New(dircache.Optimized())
	p := sys.Start(dircache.RootCreds())
	if err := p.MkdirAll("/x/y", 0o755); err != nil {
		t.Fatal(err)
	}
	before := sys.Stats()
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := p.Stat("/x/y"); err != nil {
			t.Fatal(err)
		}
	}
	d := sys.Stats().Delta(before)
	if d.Lookups != n {
		t.Fatalf("delta Lookups = %d, want %d", d.Lookups, n)
	}
	if d.FSLookups != 0 {
		t.Fatalf("delta FSLookups = %d on a warm cache", d.FSLookups)
	}
	if d.Dentries != sys.Stats().Dentries {
		t.Fatalf("Dentries gauge should pass through current value, got %d", d.Dentries)
	}
}

// TestStatsDeltaCoversEveryField guards the Delta helper against new
// CacheStats fields being added without joining the subtraction: every
// int64 counter must come out as s-prev (Dentries excepted by contract).
func TestStatsDeltaCoversEveryField(t *testing.T) {
	var prev, cur dircache.CacheStats
	pv := reflect.ValueOf(&prev).Elem()
	cv := reflect.ValueOf(&cur).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetInt(int64(i + 1))
		cv.Field(i).SetInt(int64(10 * (i + 1)))
	}
	d := cur.Delta(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		name := dv.Type().Field(i).Name
		want := int64(10*(i+1) - (i + 1))
		if name == "Dentries" {
			want = int64(10 * (i + 1)) // gauge passes through
		}
		if got := dv.Field(i).Int(); got != want {
			t.Fatalf("Delta field %s = %d, want %d", name, got, want)
		}
	}
}
